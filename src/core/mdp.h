// The learned MDP M = {S, A, T, R} (paper Section III-B).
//
// States: combined device-power/battery states (core/state.h).
// Actions: a decision action pairs the system call that fired (the
// environment's move) with the battery selection CAPMAN answers with and,
// when budget learning is on, the voluntary power-budget level (both
// controllable moves). Transition and reward statistics are estimated
// online from observations; rewards are normalized energy efficiencies in
// [0, 1] (the paper: "the reward is a function of a normalized variable in
// [0,1]").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "battery/switcher.h"
#include "core/budget_level.h"
#include "core/state.h"
#include "workload/event.h"

namespace capman::core {

/// The (syscall, battery) plane of the action space. The budget level is
/// the major index digit, so level-kFull actions occupy exactly the
/// indices the pre-budget encoding used: schedulers that never leave
/// kFull draw identical indices (and identical random numbers) as before
/// the budget dimension existed — the bit-identity contract.
inline constexpr std::size_t base_decision_action_space_size() {
  return workload::action_space_size() * 2;
}

struct DecisionAction {
  workload::Action syscall;
  battery::BatterySelection battery = battery::BatterySelection::kBig;
  BudgetLevel budget = BudgetLevel::kFull;

  friend bool operator==(const DecisionAction&,
                         const DecisionAction&) = default;

  [[nodiscard]] std::size_t index() const {
    return static_cast<std::size_t>(budget) * base_decision_action_space_size() +
           syscall.index() * 2 +
           (battery == battery::BatterySelection::kLittle ? 1 : 0);
  }
  static DecisionAction from_index(std::size_t index) {
    const std::size_t base = index % base_decision_action_space_size();
    return {workload::Action::from_index(base / 2),
            (base % 2 == 1) ? battery::BatterySelection::kLittle
                            : battery::BatterySelection::kBig,
            static_cast<BudgetLevel>(index / base_decision_action_space_size())};
  }
};

inline constexpr std::size_t decision_action_space_size() {
  return base_decision_action_space_size() * kBudgetLevelCount;
}

std::string to_string(const DecisionAction& a);

struct Observation {
  std::size_t state;        // CapmanState index
  DecisionAction action;
  std::size_t next_state;   // CapmanState index
  double reward;            // [0, 1]
};

/// Dense transition/reward statistics over the (48 x A x 48) space.
///
/// `recency_decay` < 1 turns the statistics into exponentially weighted
/// windows: each new observation of a (state, action) pair first scales the
/// pair's existing evidence by the decay. The runtime scheduler uses this
/// so stale rewards (e.g. "big handled this fine" from when the cell was
/// full) fade once reality changes; 1.0 keeps plain arithmetic statistics.
///
/// `action_count` sizes the action axis: schedulers without budget
/// learning allocate only the base (syscall x battery) plane — the dense
/// arrays triple otherwise, which matters at fleet scale. Observations
/// must stay inside the allocated plane (asserted).
class Mdp {
 public:
  explicit Mdp(double recency_decay = 1.0,
               std::size_t action_count = decision_action_space_size());

  void observe(const Observation& obs);

  [[nodiscard]] std::uint64_t total_observations() const { return total_; }
  [[nodiscard]] double count(std::size_t s, std::size_t a) const;
  [[nodiscard]] double count(std::size_t s, std::size_t a,
                             std::size_t next) const;

  /// Empirical P(next | s, a); zero vector if the pair was never seen.
  [[nodiscard]] std::vector<double> transition_distribution(
      std::size_t s, std::size_t a) const;

  /// Empirical mean reward of (s, a, next); 0 if unseen.
  [[nodiscard]] double mean_reward(std::size_t s, std::size_t a,
                                   std::size_t next) const;
  /// Empirical mean reward of (s, a) across next states; 0 if unseen.
  [[nodiscard]] double mean_reward(std::size_t s, std::size_t a) const;

  /// State indices observed at least once (as source or target).
  [[nodiscard]] std::vector<std::size_t> visited_states() const;
  /// Action indices with at least `min_count` (decayed) observations from
  /// state s.
  [[nodiscard]] std::vector<std::size_t> observed_actions(
      std::size_t s, double min_count) const;

  void clear();

  [[nodiscard]] std::size_t action_count() const { return action_count_; }

 private:
  [[nodiscard]] std::size_t flat(std::size_t s, std::size_t a,
                                 std::size_t next) const {
    return (s * action_count_ + a) * state_space_size() + next;
  }
  [[nodiscard]] std::size_t flat_sa(std::size_t s, std::size_t a) const {
    return s * action_count_ + a;
  }

  double recency_decay_;
  std::size_t action_count_;
  std::vector<double> counts_;       // (s, a, next), decayed
  std::vector<double> reward_sums_;  // (s, a, next), decayed
  std::vector<double> sa_counts_;    // (s, a), decayed
  std::vector<std::uint8_t> state_seen_;
  std::uint64_t total_ = 0;
};

}  // namespace capman::core
