#include "core/value_iteration.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/spans.h"

namespace capman::core {

std::vector<std::string> ValueIterationConfig::validate() const {
  std::vector<std::string> errors;
  if (!(rho > 0.0 && rho < 1.0)) {
    errors.push_back("rho must be in (0, 1)");
  }
  if (!(epsilon > 0.0)) {
    errors.push_back("epsilon must be > 0");
  }
  if (!(max_iterations > 0)) {
    errors.push_back("max_iterations must be > 0");
  }
  return errors;
}

ValueIterationResult solve_values(const MdpGraph& graph,
                                  const ValueIterationConfig& config) {
  assert(config.rho > 0.0 && config.rho < 1.0);
  const obs::ScopedSpan span{"vi.solve", "core"};
  const std::size_t nv = graph.state_count();
  const std::size_t na = graph.action_count();

  ValueIterationResult result;
  result.state_values.assign(nv, 0.0);
  result.action_values.assign(na, 0.0);
  result.best_action.assign(nv, ValueIterationResult::npos);

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    // Q*(a) = sum_u p(a,u) * (r(a,u) + rho * V*(u))          (Eq. 9)
    for (std::size_t a = 0; a < na; ++a) {
      double q = 0.0;
      for (const TransitionEdge& t : graph.action(a).transitions) {
        q += t.probability * (t.reward + config.rho * result.state_values[t.to]);
      }
      result.action_values[a] = q;
    }
    // V*(u) = max_{a in N_u} Q*(a)                            (Eq. 8)
    double delta = 0.0;
    for (std::size_t u = 0; u < nv; ++u) {
      const auto& actions = graph.state(u).actions;
      if (actions.empty()) continue;  // absorbing: V = 0
      double best = -1.0;
      std::size_t best_a = ValueIterationResult::npos;
      for (std::size_t a : actions) {
        if (result.action_values[a] > best) {
          best = result.action_values[a];
          best_a = a;
        }
      }
      delta = std::max(delta, std::abs(best - result.state_values[u]));
      result.state_values[u] = best;
      result.best_action[u] = best_a;
    }
    if (delta < config.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace capman::core
