// Runtime profiler: turns the simulator's per-step energy accounting into
// MDP observations (paper Fig. 5 "profile/monitor" box). An interval spans
// from one trace event (action) to the next; its reward is the normalized
// energy efficiency achieved over the interval, in [0,1], with a strong
// penalty when demand went unmet (brownout).
#pragma once

#include <optional>

#include "core/mdp.h"
#include "util/units.h"

namespace capman::core {

class RuntimeProfiler {
 public:
  /// Start a new interval: `state` and the decision taken on its opening
  /// event.
  void begin_interval(const CapmanState& state, const DecisionAction& action);

  /// Accumulate one simulation step of the open interval.
  void record(util::Joules delivered, util::Joules losses, bool demand_met);

  /// Close the open interval at the arrival of the next event; returns the
  /// observation (or nullopt when no interval was open / nothing recorded).
  std::optional<Observation> close_interval(const CapmanState& next_state);

  /// Reward model: delivered / (delivered + losses), scaled down hard when
  /// any step's demand was unmet.
  static double reward(util::Joules delivered, util::Joules losses,
                       std::size_t unmet_steps, std::size_t total_steps);

  [[nodiscard]] bool interval_open() const { return open_; }

 private:
  bool open_ = false;
  CapmanState state_{};
  DecisionAction action_{};
  double delivered_j_ = 0.0;
  double losses_j_ = 0.0;
  std::size_t unmet_steps_ = 0;
  std::size_t total_steps_ = 0;
};

}  // namespace capman::core
