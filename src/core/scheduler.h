// The online CAPMAN scheduler (paper Section III-C/D).
//
// Learns the MDP from runtime observations, periodically re-solves it in
// the background (value iteration on the MDP graph + Algorithm 1 structural
// similarities), and answers battery-selection queries in O(1):
//   1. exact: the Q-values of (state, syscall, big) vs (..., LITTLE) from
//      the last solve;
//   2. similarity transfer: for unseen combinations, reuse the decision of
//      the most structurally similar state that has the experience — this
//      is precisely what the similarity index buys ("the decision can be
//      extracted from history patterns without recomputing the graph");
//   3. fallback: a syscall-kind prior (surge-type calls -> LITTLE).
// Epsilon-greedy exploration (decaying) drives early learning, which is why
// CAPMAN "drains fast in the beginning" on PCMark (Fig. 12b) and then
// catches up.
#pragma once

#include <cstddef>
#include <unordered_map>

#include "core/config.h"
#include "core/mdp.h"
#include "core/mdp_graph.h"
#include "core/similarity.h"
#include "core/value_iteration.h"
#include "obs/decision_trace.h"
#include "obs/instrumented.h"
#include "util/rng.h"

namespace capman::core {

/// One scheduler consultation. Grew out of decide()'s positional argument
/// list: every new observable (the granted budget level, tomorrow's
/// whatever) lands here instead of at every call site.
struct DecideRequest {
  workload::Action event;
  device::DeviceStateVector device;
  battery::BatterySelection current = battery::BatterySelection::kBig;
  /// Budget level currently in force (what the arbiter granted last);
  /// ignored for indexing unless CapmanConfig::learn_budget is set.
  BudgetLevel budget = BudgetLevel::kFull;
  /// False for emergency (rail-monitor) consultations: a sagging rail is
  /// no time to experiment.
  bool allow_exploration = true;
};

/// The scheduler's answer: the cell for the coming interval plus the
/// voluntary budget level to ask the arbiter for. Without budget learning
/// the level simply echoes the request.
struct DecideResult {
  battery::BatterySelection battery = battery::BatterySelection::kBig;
  BudgetLevel budget = BudgetLevel::kFull;
};

struct DecisionStats {
  std::size_t exact = 0;        // answered from solved Q-values
  std::size_t transferred = 0;  // answered via similarity transfer
  std::size_t fallback = 0;     // answered by the syscall-kind prior
  std::size_t explored = 0;     // answered randomly (exploration)
  [[nodiscard]] std::size_t total() const {
    return exact + transferred + fallback + explored;
  }

  /// Publish the counters into `registry` under scheduler/decisions_*.
  /// The struct is cumulative over a run, so publish once, when the run
  /// is over (the engine does) — not per decision.
  void publish(obs::MetricsRegistry& registry) const;
  /// View over a registry snapshot (inverse of publish).
  static DecisionStats from_snapshot(const obs::MetricsSnapshot& snap);
};

class OnlineScheduler : public obs::Instrumented {
 public:
  OnlineScheduler(const CapmanConfig& config, std::uint64_t seed);

  /// Feed one completed interval observation into the learned MDP.
  void observe(const Observation& obs);

  /// Decision for the consultation described by `req`. Without budget
  /// learning this runs the pre-budget ladder bit-identically (level-kFull
  /// action indices, same RNG draws) and echoes req.budget; with
  /// CapmanConfig::learn_budget the Q comparison additionally ranges over
  /// budget levels and the result carries the level of the winning action.
  DecideResult decide(const DecideRequest& req);

  /// Advance the exploration schedule to simulation time `now` (seconds).
  void advance_time(double now_s);

  /// Rebuild the graph, run Algorithm 1 and value iteration. Returns the
  /// wall-clock seconds the solve took (the controller charges it as CPU
  /// maintenance work).
  double recalibrate();

  [[nodiscard]] const Mdp& mdp() const { return mdp_; }
  [[nodiscard]] const MdpGraph& graph() const { return graph_; }
  [[nodiscard]] const SimilarityResult& similarity() const {
    return similarity_;
  }
  [[nodiscard]] const ValueIterationResult& values() const { return values_; }
  [[nodiscard]] const DecisionStats& decision_stats() const { return stats_; }
  [[nodiscard]] double exploration_rate() const { return exploration_; }
  [[nodiscard]] std::size_t recalibration_count() const { return recals_; }

  /// Provenance of the most recent decide() call: which rung of the
  /// decision ladder answered, the Q estimates it compared, and (for
  /// similarity transfer) the state whose experience was reused. Feeds the
  /// decision-trace recorder; valid until the next decide().
  [[nodiscard]] const obs::DecisionDetail& last_decision_detail() const {
    return last_detail_;
  }

  // bind_metrics (obs::Instrumented) attaches solve-side telemetry:
  // Algorithm 1 pair counters per recalibration, value-iteration sweeps,
  // graph sizes; publish_timings additionally exports wall-clock solve
  // timings (the one nondeterministic measurement).

  /// The syscall-kind prior used as last resort (exposed for tests); the
  /// parameter bucket disambiguates spike-like from sustained calls.
  static battery::BatterySelection kind_prior(workload::Syscall kind,
                                              std::uint8_t param_bucket = 9);

 private:
  /// Q-value of (state_id, action_id) from the last solve, or NaN.
  [[nodiscard]] double solved_q(std::size_t state_id,
                                std::size_t action_id) const;
  /// Best solved Q for (state, syscall, battery) over the budget levels
  /// the scheduler may pick (just kFull without budget learning), or NaN.
  /// `best_level` (if non-null) receives the winning level; ties break
  /// toward the higher budget (lower level index).
  [[nodiscard]] double best_q_over_levels(std::size_t state_id,
                                          const workload::Action& event,
                                          battery::BatterySelection battery,
                                          BudgetLevel* best_level) const;
  /// Best similarity-transferred Q estimate for (state, syscall-kind,
  /// battery), or NaN when nothing transferable exists. When it answers,
  /// `matched_state` (if non-null) receives the CapmanState::index() of
  /// the state whose experience was reused, and `matched_level` the
  /// budget level of the matched action.
  [[nodiscard]] double transferred_q(std::size_t state_id,
                                     workload::Syscall kind,
                                     battery::BatterySelection battery,
                                     std::int64_t* matched_state,
                                     BudgetLevel* matched_level) const;

  CapmanConfig config_;
  util::Rng rng_;
  Mdp mdp_;
  MdpGraph graph_;
  SimilarityResult similarity_;
  ValueIterationResult values_;
  // (state_id << 16 | action_id) -> action vertex index of the last solve.
  std::unordered_map<std::uint64_t, std::size_t> action_vertex_index_;
  DecisionStats stats_;
  obs::DecisionDetail last_detail_;
  double exploration_;
  double last_time_s_ = 0.0;
  std::size_t recals_ = 0;
};

}  // namespace capman::core
