// Algorithm 1: Structural Similarities Recursion (paper Section III-C/D,
// after Wang et al., IJCAI'19).
//
// Iteratively computes state similarities sigma_S (via Hausdorff distance
// over action-neighbour sets under the action dissimilarity delta_A) and
// action similarities sigma_A (via expected-reward distance and the Earth
// Mover's Distance between transition distributions under the state
// dissimilarity delta_S), with discount weights C_S and C_A:
//
//   sigma_S(u,v) = C_S * (1 - Hausdorff(N_u, N_v; delta_A))
//   sigma_A(a,b) = 1 - (1-C_A) * delta_rwd(a,b)
//                    - C_A * EMD(p_a, p_b; delta_S)
//
// Base cases (Eq. 3): delta_S(u,u) = 0; exactly one absorbing -> 1; both
// absorbing -> d_{u,v}.
//
// With C_S = 1 and C_A = rho the fixed point delta*_S bounds optimal value
// differences: |V*_u - V*_v| <= delta*_S(u,v) / (1 - rho)  (Eq. 10) — the
// paper's O(1/(1-rho)) competitiveness. Tested in
// tests/core/similarity_bound_test.cpp.
//
// Engine (see docs/ARCHITECTURE.md and DESIGN.md §8): every pair update of
// a sweep reads only the previous sweep's matrices, so both phases shard
// across a util::ThreadPool with a barrier between them; every pair is
// owned by exactly one worker and the convergence reduction runs on the
// calling thread in a fixed order, making results bit-identical for every
// thread count. An exact EMD memo (per action pair, verified against the
// exact ground-distance values before reuse) and an optional frozen-pair
// frontier cut the per-sweep work once most pairs stop moving.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/mdp_graph.h"
#include "math/matrix.h"
#include "obs/metrics.h"

namespace capman::core {

struct SimilarityConfig {
  double c_s = 1.0;   // (0, 1]; 1 for the competitiveness bound
  double c_a = 0.8;   // (0, 1); set to rho for the bound
  double epsilon = 0.01;
  std::size_t max_iterations = 60;
  double absorbing_distance = 1.0;  // d_{u,v} of Eq. 3

  // Worker threads for the per-sweep pair fan-out; 0 means one per
  // hardware core. Results are bit-identical for every value.
  std::size_t num_threads = 0;
  // Reuse a pair's last EMD when its exact ground-distance inputs (the
  // delta_S entries over the two transition supports) are unchanged.
  // Exact: toggling the cache cannot change a single bit of the result.
  bool use_emd_cache = true;
  // Skip pairs whose similarity moved less than the freeze threshold in
  // their last computed sweep and whose inputs have drifted less than the
  // threshold since. Approximate: the result may differ from the exact
  // fixed point by O(threshold * C_A / (1 - C_A)); off by default.
  bool skip_frozen_pairs = false;
  // Freeze/wake threshold for skip_frozen_pairs; 0 means epsilon / 4.
  double freeze_threshold = 0.0;

  // Observability (src/obs): when set, the solve publishes its pair
  // counters into this registry (accumulating across solves) and the
  // ThreadPool counts its dispatches there too. Never read on the math
  // path — results are bit-identical with or without a registry.
  obs::MetricsRegistry* metrics = nullptr;
  // Additionally publish wall-clock timings (similarity/sweep_ms histogram,
  // similarity/total_ms gauge). Separate switch because timings are the
  // one nondeterministic measurement: deterministic snapshots stay
  // comparable run-to-run when this is off.
  bool publish_timings = false;

  /// Human-readable configuration errors; empty means valid. Reached from
  /// CapmanConfig::validate() via CapmanConfig::similarity_config().
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Per-solve instrumentation of the similarity engine. Pair counters are
/// accumulated over all sweeps: every (pair, sweep) visit is classified as
/// computed (full EMD / Hausdorff), cached (exact EMD reuse) or skipped
/// (frozen frontier), so computed + cached + skipped == total.
struct SimilarityStats {
  std::size_t action_pairs_total = 0;
  std::size_t action_pairs_computed = 0;
  std::size_t action_pairs_cached = 0;
  std::size_t action_pairs_skipped = 0;
  std::size_t state_pairs_total = 0;     // no cache on the Hausdorff side:
  std::size_t state_pairs_computed = 0;  // computed + skipped == total
  std::size_t state_pairs_skipped = 0;
  std::vector<double> iteration_ms;  // wall time of each sweep
  double total_ms = 0.0;
  std::size_t threads_used = 1;

  /// The accounting invariant above; asserted in tests.
  [[nodiscard]] bool consistent() const {
    return action_pairs_computed + action_pairs_cached +
               action_pairs_skipped == action_pairs_total &&
           state_pairs_computed + state_pairs_skipped == state_pairs_total;
  }

  /// Publish the pair counters (and threads gauge) into `registry` under
  /// the similarity/ prefix, accumulating across solves. Timings are
  /// excluded here — see SimilarityConfig::publish_timings.
  void publish(obs::MetricsRegistry& registry) const;
  /// View over a registry snapshot: reconstructs the counter fields
  /// (iteration_ms and total_ms are wall-clock and not part of the
  /// deterministic snapshot contract, so they come back empty/zero).
  static SimilarityStats from_snapshot(const obs::MetricsSnapshot& snap);
};

struct SimilarityResult {
  math::Matrix state_similarity;   // sigma*_S, |V| x |V|
  math::Matrix action_similarity;  // sigma*_A, |Lambda| x |Lambda|
  std::size_t iterations = 0;
  bool converged = false;
  SimilarityStats stats;

  [[nodiscard]] double state_distance(std::size_t u, std::size_t v) const {
    return 1.0 - state_similarity(u, v);
  }
  [[nodiscard]] double action_distance(std::size_t a, std::size_t b) const {
    return 1.0 - action_similarity(a, b);
  }
};

/// Runs Algorithm 1 to the given precision.
SimilarityResult compute_structural_similarity(const MdpGraph& graph,
                                               const SimilarityConfig& config);

}  // namespace capman::core
