// Algorithm 1: Structural Similarities Recursion (paper Section III-C/D,
// after Wang et al., IJCAI'19).
//
// Iteratively computes state similarities sigma_S (via Hausdorff distance
// over action-neighbour sets under the action dissimilarity delta_A) and
// action similarities sigma_A (via expected-reward distance and the Earth
// Mover's Distance between transition distributions under the state
// dissimilarity delta_S), with discount weights C_S and C_A:
//
//   sigma_S(u,v) = C_S * (1 - Hausdorff(N_u, N_v; delta_A))
//   sigma_A(a,b) = 1 - (1-C_A) * delta_rwd(a,b)
//                    - C_A * EMD(p_a, p_b; delta_S)
//
// Base cases (Eq. 3): delta_S(u,u) = 0; exactly one absorbing -> 1; both
// absorbing -> d_{u,v}.
//
// With C_S = 1 and C_A = rho the fixed point delta*_S bounds optimal value
// differences: |V*_u - V*_v| <= delta*_S(u,v) / (1 - rho)  (Eq. 10) — the
// paper's O(1/(1-rho)) competitiveness. Tested in
// tests/core/similarity_bound_test.cpp.
#pragma once

#include <cstddef>

#include "core/mdp_graph.h"
#include "math/matrix.h"

namespace capman::core {

struct SimilarityConfig {
  double c_s = 1.0;   // (0, 1]; 1 for the competitiveness bound
  double c_a = 0.8;   // (0, 1); set to rho for the bound
  double epsilon = 0.01;
  std::size_t max_iterations = 60;
  double absorbing_distance = 1.0;  // d_{u,v} of Eq. 3
};

struct SimilarityResult {
  math::Matrix state_similarity;   // sigma*_S, |V| x |V|
  math::Matrix action_similarity;  // sigma*_A, |Lambda| x |Lambda|
  std::size_t iterations = 0;
  bool converged = false;

  [[nodiscard]] double state_distance(std::size_t u, std::size_t v) const {
    return 1.0 - state_similarity(u, v);
  }
  [[nodiscard]] double action_distance(std::size_t a, std::size_t b) const {
    return 1.0 - action_similarity(a, b);
  }
};

/// Runs Algorithm 1 to the given precision.
SimilarityResult compute_structural_similarity(const MdpGraph& graph,
                                               const SimilarityConfig& config);

}  // namespace capman::core
