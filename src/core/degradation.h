// Graceful degradation of the actuator path (the robustness companion to
// the scheduler): the battery switch facility is real hardware that can
// stick, glitch or answer late, and a scheduler that keeps trusting a
// broken actuator browns the phone out. The DegradationGuard sits between
// the scheduler's *desired* battery and the request actually issued:
//
//  1. Detection — after every consultation the guard compares the cell the
//     scheduler asked for against the cell the comparator actually latched
//     (`PolicyContext::active`). A request that has not landed within
//     `detect_after` (orders of magnitude beyond the ms-scale switch
//     latency) is a failed or late switch.
//  2. Fallback — while the actuator is suspect the guard pins the decision
//     to the currently active cell (the safe policy for whichever battery
//     the phone actually has: stuck on big behaves like Practice, stuck on
//     LITTLE like Dual) instead of letting the scheduler thrash a dead
//     select line.
//  3. Retry with exponential backoff — the desired switch is re-issued at
//     `retry_initial`, doubling (`retry_backoff`) up to `retry_max`.
//     Rail-monitor emergencies bypass the backoff: a sagging rail is worth
//     a retry immediately (the engine already rate-limits emergencies).
//
// The guard is pure bookkeeping — no RNG, no allocation — and is disabled
// by default so fault-free runs are bit-identical to a guard-less build.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "battery/switcher.h"
#include "obs/metrics.h"
#include "util/units.h"

namespace capman::core {

struct DegradationConfig {
  bool enabled = false;
  // How long a requested switch may stay un-latched before it counts as
  // failed. Must dwarf the facility's ms-scale latency.
  util::Seconds detect_after{0.3};
  util::Seconds retry_initial{0.5};
  double retry_backoff = 2.0;
  util::Seconds retry_max{16.0};

  /// Human-readable configuration errors; empty means valid. Checked by
  /// the DegradationGuard constructor (throws std::invalid_argument when
  /// the guard is enabled).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Telemetry of the guard; threaded into sim::FaultStats by the engine.
struct DegradationStats {
  std::size_t failures_detected = 0;  // switches that never latched
  std::size_t fallback_episodes = 0;  // times the guard took over
  std::size_t retries = 0;            // backed-off re-requests issued
  bool in_fallback = false;           // currently riding the safe policy

  /// Publish the counters into `registry` under guard/*. Cumulative over a
  /// run; publish once when the run is over (the engine does).
  void publish(obs::MetricsRegistry& registry) const;
  /// View over a registry snapshot (inverse of publish).
  static DegradationStats from_snapshot(const obs::MetricsSnapshot& snap);
};

class DegradationGuard {
 public:
  explicit DegradationGuard(const DegradationConfig& config);

  /// Map the scheduler's desired selection to the request actually issued,
  /// given the cell the comparator reports active. Call once per
  /// consultation, in simulation-time order. `feasible` tells the guard
  /// whether the management facility would accept the desired switch at
  /// all (a drained target cell is refused by design — see
  /// DualBatteryPack::request); infeasible switches park the watchdog
  /// instead of arming it, so legitimate refusals are never misread as
  /// actuator faults.
  battery::BatterySelection filter(util::Seconds now,
                                   battery::BatterySelection observed,
                                   battery::BatterySelection desired,
                                   bool emergency, bool feasible = true);

  [[nodiscard]] const DegradationStats& stats() const { return stats_; }
  [[nodiscard]] bool in_fallback() const { return fallback_; }

 private:
  DegradationConfig config_;
  DegradationStats stats_;
  // Normal mode: the selection we asked the facility for and when, so a
  // switch that never lands can be detected.
  std::optional<battery::BatterySelection> expected_;
  double expected_since_s_ = 0.0;
  // Fallback mode: retry schedule for the stuck transition.
  bool fallback_ = false;
  double next_retry_s_ = 0.0;
  double retry_interval_s_ = 0.0;
};

}  // namespace capman::core
