// core::PowerBudgetArbiter — system-EDP-style dynamic power capping.
//
// Closes the ROADMAP's "System-EDP-style dynamic power-budget arbiter"
// item, modeled on SNIPPETS.md Snippet 1 (nvidia sysedp dynamic capping)
// with FastCap-style fair trimming (PAPERS.md). The arbiter:
//
//  1. derives a total milliwatt budget from battery state — state of
//     charge of the active cell, rail-voltage headroom, supercapacitor
//     margin — and from skin/cell temperature (the tightest constraint
//     rules: the headroom factor is the minimum over all deratings);
//  2. scales it by the voluntary BudgetLevel fraction (the MDP action
//     dimension, core/budget_level.h);
//  3. picks a corecap row (highest row whose activation budget fits) and
//     applies its per-consumer caps — the CPU-priority split normally,
//     the cooling-priority split when the hot spot runs hot;
//  4. trims any residual deficit off the consumers in shed-priority order
//     down to their capability floors, then hands each consumer its cap
//     via PowerConsumer::apply_cap.
//
// Two cap methods, after the sysedp binding:
//  * kRelax  — the board has a voltage comparator, so the budget may use
//              the live rail voltage optimistically and re-budget when
//              the comparator trips (the engine triggers on rail sag);
//  * kStatic — comparator-less boards must assume the worst case up
//              front: live voltage is ignored and a static margin is
//              shaved off every budget.
//
// Everything here is pure arithmetic over its inputs — no clocks, no
// randomness — so arbiter-enabled runs stay bit-identical across threads
// and shards (the fleet gate asserts this).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "battery/switcher.h"
#include "core/budget_level.h"
#include "device/power_consumer.h"
#include "obs/instrumented.h"

namespace capman::core {

enum class CapMethod : std::uint8_t {
  kRelax = 0,   // voltage comparator present: optimistic, rebudget on sag
  kStatic = 1,  // comparator-less: worst-case static margin, no rebudget
};

const char* to_string(CapMethod method);

/// Per-consumer milliwatt caps of one corecap row.
struct CorecapSplit {
  util::Milliwatts cpu_mw;
  util::Milliwatts screen_mw;
  util::Milliwatts wifi_mw;
  util::Milliwatts tec_mw;

  [[nodiscard]] util::Milliwatts total() const {
    return cpu_mw + screen_mw + wifi_mw + tec_mw;
  }
  [[nodiscard]] util::Milliwatts cap_for(device::ConsumerKind kind) const;
};

/// One corecap-table row: activates when the effective budget reaches
/// budget_mw; carries a CPU-priority and a cooling-priority cap split
/// (each split's caps must sum to at most budget_mw — validated — which
/// is what makes grants monotone in the budget).
struct CorecapRow {
  util::Milliwatts budget_mw;
  CorecapSplit cpu_priority;
  CorecapSplit cooling_priority;
};

/// The default table, tuned for the Nexus-class Table II/III models: rows
/// from survival (sub-watt) to unconstrained (every consumer near its
/// model maximum). Cooling-priority splits reach the TEC's rated draw by
/// the third row so a hot die can always buy its cooler before its cycles.
[[nodiscard]] std::vector<CorecapRow> default_corecap_table();

struct PowerBudgetArbiterConfig {
  bool enabled = false;
  CapMethod cap_method = CapMethod::kRelax;

  // Budget range: base at full headroom, floor when every derate bites.
  util::Milliwatts base_budget_mw{5400.0};
  util::Milliwatts min_budget_mw{900.0};

  // State-of-charge derating of the active cell: no derate above the
  // knee, linear derate between knee and floor, floored below.
  double soc_floor = 0.10;
  double soc_knee = 0.40;

  // Rail-voltage headroom (kRelax only: comparator-less boards cannot
  // read the live rail).
  double rail_min_v = 3.30;
  double nominal_v = 3.90;
  // Comparator trip point: rail below this triggers a rebudget (kRelax).
  double rebudget_trigger_v = 3.55;
  double min_rebudget_gap_s = 0.5;

  // Supercapacitor margin: full headroom at or above this fill fraction.
  double supercap_margin_fill = 0.35;

  // Thermal derating: linear between soft and hard limits (skin is the
  // 45 C envelope the paper guards; the cell protects chemistry).
  double skin_soft_c = 37.0;
  double skin_hard_c = 45.0;
  double cell_soft_c = 40.0;
  double cell_hard_c = 55.0;

  // kStatic worst-case margin multiplier on every effective budget.
  double static_margin = 0.85;

  // Voluntary spend fraction per BudgetLevel (full, balanced, eco).
  std::array<util::Ratio, kBudgetLevelCount> level_fraction{
      util::Ratio{1.0}, util::Ratio{0.8}, util::Ratio{0.6}};

  // Cooling-priority rows engage above this hot-spot temperature.
  double cooling_priority_hotspot_c = 43.0;

  std::vector<CorecapRow> corecaps = default_corecap_table();

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by sim::SimConfig::validate() under "budget."; checked by the
  /// PowerBudgetArbiter constructor (throws std::invalid_argument).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Everything the arbiter reads when deriving a budget. The engine fills
/// it from ground truth (the arbiter models the management facility's own
/// hardware — fuel gauge, comparator — not the policy's sensor view).
struct BudgetInputs {
  double big_soc = 1.0;
  double little_soc = 1.0;
  battery::BatterySelection active = battery::BatterySelection::kBig;
  double rail_v = 3.9;
  double supercap_fill = 1.0;
  double skin_c = 26.0;
  double cell_c = 26.0;
  double hotspot_c = 26.0;
};

/// The outcome of one rebudget.
struct BudgetGrant {
  util::Milliwatts derived_mw;    // budget before level scaling / margin
  util::Milliwatts effective_mw;  // after level fraction and cap method
  util::Milliwatts granted_mw;    // sum of consumer grants (may exceed
                                  // effective_mw when floors dominate)
  BudgetLevel level = BudgetLevel::kFull;
  bool cooling_priority = false;
  std::size_t row = 0;  // index of the corecap row applied
  std::array<util::Milliwatts, device::kConsumerKindCount> by_kind{};
};

class PowerBudgetArbiter : public obs::Instrumented {
 public:
  /// Throws std::invalid_argument listing every problem when
  /// `config.validate()` is non-empty.
  explicit PowerBudgetArbiter(const PowerBudgetArbiterConfig& config);

  /// The total budget the battery/thermal state supports right now, in
  /// [min_budget_mw, base_budget_mw]. Pure: no state is touched.
  [[nodiscard]] util::Milliwatts derive_budget_mw(const BudgetInputs& in) const;

  /// Full rebudget: derive, scale by `level`, pick the corecap row, trim
  /// to the effective budget in shed-priority order, and hand each
  /// consumer its cap via apply_cap. Consumers not present in `consumers`
  /// simply keep their previous caps.
  BudgetGrant rebudget(const BudgetInputs& in, BudgetLevel level,
                       std::span<device::PowerConsumer* const> consumers);

  /// Note a comparator trip (kRelax); the engine calls this before the
  /// sag-triggered rebudget so telemetry separates the trigger kinds.
  void note_voltage_trigger() { ++voltage_triggers_; }

  [[nodiscard]] const BudgetGrant& last_grant() const { return last_; }
  [[nodiscard]] std::size_t rebudget_count() const { return rebudgets_; }
  [[nodiscard]] std::size_t voltage_trigger_count() const {
    return voltage_triggers_;
  }
  [[nodiscard]] const PowerBudgetArbiterConfig& config() const {
    return config_;
  }

  /// Publishes arbiter/* counters and gauges (rebudgets, voltage
  /// triggers, cooling-priority engagements, last/min granted budget).
  void publish_metrics(obs::MetricsRegistry& registry) const override;

 private:
  [[nodiscard]] const CorecapRow& row_for(util::Milliwatts effective_mw,
                                          std::size_t* index) const;

  PowerBudgetArbiterConfig config_;
  BudgetGrant last_;
  std::size_t rebudgets_ = 0;
  std::size_t voltage_triggers_ = 0;
  std::size_t cooling_rebudgets_ = 0;
  util::Milliwatts min_granted_mw_;
  bool any_grant_ = false;
};

}  // namespace capman::core
