#include "core/mdp.h"

#include <algorithm>
#include <cassert>

namespace capman::core {

std::string to_string(const DecisionAction& a) {
  std::string out = workload::to_string(a.syscall) + "/" +
                    std::string{battery::to_string(a.battery)};
  if (a.budget != BudgetLevel::kFull) {
    out += "/";
    out += to_string(a.budget);
  }
  return out;
}

Mdp::Mdp(double recency_decay, std::size_t action_count)
    : recency_decay_(recency_decay),
      action_count_(action_count),
      counts_(state_space_size() * action_count * state_space_size(), 0.0),
      reward_sums_(counts_.size(), 0.0),
      sa_counts_(state_space_size() * action_count, 0.0),
      state_seen_(state_space_size(), 0) {
  assert(recency_decay_ > 0.0 && recency_decay_ <= 1.0);
  assert(action_count_ > 0 && action_count_ <= decision_action_space_size());
}

void Mdp::observe(const Observation& obs) {
  assert(obs.state < state_space_size());
  assert(obs.next_state < state_space_size());
  assert(obs.action.index() < action_count_);
  assert(obs.reward >= 0.0 && obs.reward <= 1.0);
  const std::size_t a = obs.action.index();
  if (recency_decay_ < 1.0) {
    // Fade this pair's prior evidence before adding the new sample.
    for (std::size_t next = 0; next < state_space_size(); ++next) {
      counts_[flat(obs.state, a, next)] *= recency_decay_;
      reward_sums_[flat(obs.state, a, next)] *= recency_decay_;
    }
    sa_counts_[flat_sa(obs.state, a)] *= recency_decay_;
  }
  const std::size_t f = flat(obs.state, a, obs.next_state);
  counts_[f] += 1.0;
  reward_sums_[f] += obs.reward;
  sa_counts_[flat_sa(obs.state, a)] += 1.0;
  state_seen_[obs.state] = 1;
  state_seen_[obs.next_state] = 1;
  ++total_;
}

double Mdp::count(std::size_t s, std::size_t a) const {
  return sa_counts_[flat_sa(s, a)];
}

double Mdp::count(std::size_t s, std::size_t a, std::size_t next) const {
  return counts_[flat(s, a, next)];
}

std::vector<double> Mdp::transition_distribution(std::size_t s,
                                                 std::size_t a) const {
  std::vector<double> dist(state_space_size(), 0.0);
  const double total = sa_counts_[flat_sa(s, a)];
  if (total <= 0.0) return dist;
  for (std::size_t next = 0; next < state_space_size(); ++next) {
    dist[next] = counts_[flat(s, a, next)] / total;
  }
  return dist;
}

double Mdp::mean_reward(std::size_t s, std::size_t a,
                        std::size_t next) const {
  const double n = counts_[flat(s, a, next)];
  return n > 0.0 ? reward_sums_[flat(s, a, next)] / n : 0.0;
}

double Mdp::mean_reward(std::size_t s, std::size_t a) const {
  const double n = sa_counts_[flat_sa(s, a)];
  if (n <= 0.0) return 0.0;
  double sum = 0.0;
  for (std::size_t next = 0; next < state_space_size(); ++next) {
    sum += reward_sums_[flat(s, a, next)];
  }
  return sum / n;
}

std::vector<std::size_t> Mdp::visited_states() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < state_space_size(); ++s) {
    if (state_seen_[s] != 0) out.push_back(s);
  }
  return out;
}

std::vector<std::size_t> Mdp::observed_actions(std::size_t s,
                                               double min_count) const {
  std::vector<std::size_t> out;
  for (std::size_t a = 0; a < action_count_; ++a) {
    if (sa_counts_[flat_sa(s, a)] >= min_count) out.push_back(a);
  }
  return out;
}

void Mdp::clear() {
  std::fill(counts_.begin(), counts_.end(), 0.0);
  std::fill(reward_sums_.begin(), reward_sums_.end(), 0.0);
  std::fill(sa_counts_.begin(), sa_counts_.end(), 0.0);
  std::fill(state_seen_.begin(), state_seen_.end(), 0);
  total_ = 0;
}

}  // namespace capman::core
