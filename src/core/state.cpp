#include "core/state.h"

namespace capman::core {

std::string to_string(const CapmanState& s) {
  std::string out = to_string(s.device);
  out.back() = ',';  // replace closing brace
  out += battery::to_string(s.battery);
  out += "}";
  return out;
}

}  // namespace capman::core
