#include "core/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/emd.h"
#include "math/hausdorff.h"

namespace capman::core {

namespace {

/// delta_EMD(p_a, p_b; delta_S): EMD between the two actions' transition
/// distributions, with ground distance 1 - S over their target states.
double transition_emd(const ActionVertex& a, const ActionVertex& b,
                      const math::Matrix& state_sim) {
  math::Distribution pa;
  math::Distribution pb;
  pa.mass.reserve(a.transitions.size());
  pb.mass.reserve(b.transitions.size());
  for (const auto& t : a.transitions) pa.mass.push_back(t.probability);
  for (const auto& t : b.transitions) pb.mass.push_back(t.probability);
  const auto ground = [&](std::size_t i, std::size_t j) {
    const double sim = state_sim(a.transitions[i].to, b.transitions[j].to);
    return std::clamp(1.0 - sim, 0.0, 1.0);
  };
  return math::earth_movers_distance(pa, pb, ground);
}

}  // namespace

SimilarityResult compute_structural_similarity(
    const MdpGraph& graph, const SimilarityConfig& config) {
  assert(config.c_s > 0.0 && config.c_s <= 1.0);
  assert(config.c_a > 0.0 && config.c_a < 1.0);
  const std::size_t nv = graph.state_count();
  const std::size_t na = graph.action_count();

  SimilarityResult result;
  result.state_similarity = math::Matrix::identity(std::max<std::size_t>(nv, 1));
  result.action_similarity = math::Matrix::identity(std::max<std::size_t>(na, 1));
  if (nv == 0) {
    result.converged = true;
    return result;
  }

  math::Matrix& s_mat = result.state_similarity;
  math::Matrix& a_mat = result.action_similarity;

  // Base cases (Eq. 3) are fixed across iterations.
  auto apply_state_base_cases = [&] {
    for (std::size_t u = 0; u < nv; ++u) {
      for (std::size_t v = 0; v < nv; ++v) {
        if (u == v) {
          s_mat(u, v) = 1.0;  // delta_S = 0
          continue;
        }
        const bool ua = graph.state(u).absorbing();
        const bool va = graph.state(v).absorbing();
        if (ua && va) {
          s_mat(u, v) = 1.0 - config.absorbing_distance;
        } else if (ua != va) {
          s_mat(u, v) = 0.0;  // delta_S = 1
        }
      }
    }
  };
  apply_state_base_cases();

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const math::Matrix s_prev = s_mat;
    const math::Matrix a_prev = a_mat;

    // Lines 3-5: action similarities from reward distance + EMD.
    for (std::size_t a = 0; a < na; ++a) {
      for (std::size_t b = a + 1; b < na; ++b) {
        const double d_rwd = std::abs(graph.action(a).expected_reward() -
                                      graph.action(b).expected_reward());
        const double d_emd =
            transition_emd(graph.action(a), graph.action(b), s_prev);
        const double sim = std::clamp(
            1.0 - (1.0 - config.c_a) * d_rwd - config.c_a * d_emd, 0.0, 1.0);
        a_mat(a, b) = sim;
        a_mat(b, a) = sim;
      }
      a_mat(a, a) = 1.0;
    }

    // Lines 6-7: state similarities via Hausdorff over action neighbours.
    for (std::size_t u = 0; u < nv; ++u) {
      const auto& nu = graph.state(u).actions;
      if (nu.empty()) continue;  // absorbing: base case holds
      for (std::size_t v = u + 1; v < nv; ++v) {
        const auto& nvv = graph.state(v).actions;
        if (nvv.empty()) continue;
        const double h = math::hausdorff(
            nu.size(), nvv.size(), [&](std::size_t i, std::size_t j) {
              return std::clamp(1.0 - a_mat(nu[i], nvv[j]), 0.0, 1.0);
            });
        const double sim = config.c_s * (1.0 - h);
        s_mat(u, v) = sim;
        s_mat(v, u) = sim;
      }
    }
    apply_state_base_cases();

    ++result.iterations;
    // Contraction-aware convergence: per-iteration movement delta implies a
    // distance to the fixed point of at most delta * c / (1 - c); stopping
    // on raw delta would under-iterate exactly when C_A -> 1 (the regime
    // Fig. 16 studies).
    const double delta = std::max(s_mat.linf_distance(s_prev),
                                  a_mat.linf_distance(a_prev));
    if (delta * config.c_a <= config.epsilon * (1.0 - config.c_a)) {
      result.converged = true;
      break;
    }
  }
  assert(s_mat.all_in(0.0, 1.0));
  assert(a_mat.all_in(0.0, 1.0));
  return result;
}

}  // namespace capman::core
