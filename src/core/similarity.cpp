#include "core/similarity.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "math/emd.h"
#include "math/hausdorff.h"
#include "obs/spans.h"
#include "util/thread_pool.h"

namespace capman::core {

std::vector<std::string> SimilarityConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(c_s > 0.0 && c_s <= 1.0, "c_s must be in (0, 1]");
  require(c_a > 0.0 && c_a < 1.0, "c_a must be in (0, 1)");
  require(epsilon > 0.0, "epsilon must be > 0");
  require(max_iterations > 0, "max_iterations must be > 0");
  require(absorbing_distance >= 0.0, "absorbing_distance must be >= 0");
  require(freeze_threshold >= 0.0, "freeze_threshold must be >= 0");
  return errors;
}

void SimilarityStats::publish(obs::MetricsRegistry& registry) const {
  registry.counter("similarity/solves").add();
  registry.counter("similarity/action_pairs_total").add(action_pairs_total);
  registry.counter("similarity/action_pairs_computed")
      .add(action_pairs_computed);
  registry.counter("similarity/action_pairs_cached").add(action_pairs_cached);
  registry.counter("similarity/action_pairs_skipped")
      .add(action_pairs_skipped);
  registry.counter("similarity/state_pairs_total").add(state_pairs_total);
  registry.counter("similarity/state_pairs_computed").add(state_pairs_computed);
  registry.counter("similarity/state_pairs_skipped").add(state_pairs_skipped);
  registry.gauge("similarity/threads").set(static_cast<double>(threads_used));
}

SimilarityStats SimilarityStats::from_snapshot(
    const obs::MetricsSnapshot& snap) {
  SimilarityStats stats;
  stats.action_pairs_total = snap.counter_or("similarity/action_pairs_total");
  stats.action_pairs_computed =
      snap.counter_or("similarity/action_pairs_computed");
  stats.action_pairs_cached = snap.counter_or("similarity/action_pairs_cached");
  stats.action_pairs_skipped =
      snap.counter_or("similarity/action_pairs_skipped");
  stats.state_pairs_total = snap.counter_or("similarity/state_pairs_total");
  stats.state_pairs_computed =
      snap.counter_or("similarity/state_pairs_computed");
  stats.state_pairs_skipped = snap.counter_or("similarity/state_pairs_skipped");
  stats.threads_used =
      static_cast<std::size_t>(snap.gauge_or("similarity/threads", 1.0));
  stats.total_ms = snap.gauge_or("similarity/total_ms", 0.0);
  return stats;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Memo slot for one action pair: the last solved EMD together with the
/// exact ground-distance values it was solved under. Reuse requires the
/// current ground values to compare equal element-for-element, so a hit
/// returns exactly what the flow solver would — the cache cannot change a
/// bit of the result, only skip the solve.
struct EmdCacheEntry {
  std::vector<double> ground;
  double emd = 0.0;
  std::uint64_t signature = 0;
  bool valid = false;
};

/// Order-sensitive hash of the ground row, quantised to 2^-24 (well below
/// any meaningful similarity difference). Used only as a fast reject
/// before the exact vector comparison above.
std::uint64_t ground_signature(const std::vector<double>& ground) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ ground.size();
  for (const double v : ground) {
    const auto q = static_cast<std::uint64_t>(
        std::llround(v * static_cast<double>(1 << 24)));
    h ^= q + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Per-worker reusable buffers and counters; workers never share one, so
/// the hot loop allocates only when a support outgrows its buffer.
struct WorkerScratch {
  std::vector<double> ground;
  math::Distribution pa;
  math::Distribution pb;
  std::size_t action_computed = 0;
  std::size_t action_cached = 0;
  std::size_t action_skipped = 0;
  std::size_t state_computed = 0;
  std::size_t state_skipped = 0;
};

using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

}  // namespace

SimilarityResult compute_structural_similarity(
    const MdpGraph& graph, const SimilarityConfig& config) {
  assert(config.c_s > 0.0 && config.c_s <= 1.0);
  assert(config.c_a > 0.0 && config.c_a < 1.0);
  const obs::ScopedSpan solve_span{"similarity.solve", "core"};
  const std::size_t nv = graph.state_count();
  const std::size_t na = graph.action_count();

  // Publish at every exit so even trivial solves count; the registry is
  // write-only for the solver — toggling it cannot change a result bit.
  const auto publish = [&config](const SimilarityResult& r) {
    if (config.metrics == nullptr) return;
    r.stats.publish(*config.metrics);
    if (config.publish_timings) {
      obs::Histogram& sweeps = config.metrics->histogram(
          "similarity/sweep_ms",
          {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0});
      for (const double ms : r.stats.iteration_ms) sweeps.observe(ms);
      config.metrics->gauge("similarity/total_ms").add(r.stats.total_ms);
    }
  };

  SimilarityResult result;
  result.state_similarity = math::Matrix::identity(std::max<std::size_t>(nv, 1));
  result.action_similarity = math::Matrix::identity(std::max<std::size_t>(na, 1));
  if (nv == 0) {
    result.converged = true;
    publish(result);
    return result;
  }

  math::Matrix& s_mat = result.state_similarity;
  math::Matrix& a_mat = result.action_similarity;

  // Base cases (Eq. 3). The sweeps below only write pairs of distinct
  // non-absorbing states, so one application holds for the whole solve.
  for (std::size_t u = 0; u < nv; ++u) {
    for (std::size_t v = 0; v < nv; ++v) {
      if (u == v) {
        s_mat(u, v) = 1.0;  // delta_S = 0
        continue;
      }
      const bool ua = graph.state(u).absorbing();
      const bool va = graph.state(v).absorbing();
      if (ua && va) {
        s_mat(u, v) = 1.0 - config.absorbing_distance;
      } else if (ua != va) {
        s_mat(u, v) = 0.0;  // delta_S = 1
      }
    }
  }

  // The work lists: every unordered action pair, and every unordered pair
  // of distinct non-absorbing states (absorbing pairs are base cases).
  // Fixed up front so sweeps shard over stable indices.
  PairList action_pairs;
  action_pairs.reserve(na * (na - 1) / 2);
  for (std::uint32_t a = 0; a < na; ++a) {
    for (std::uint32_t b = a + 1; b < na; ++b) action_pairs.push_back({a, b});
  }
  PairList state_pairs;
  for (std::uint32_t u = 0; u < nv; ++u) {
    if (graph.state(u).absorbing()) continue;
    for (std::uint32_t v = u + 1; v < nv; ++v) {
      if (!graph.state(v).absorbing()) state_pairs.push_back({u, v});
    }
  }

  std::vector<double> rewards(na);
  for (std::size_t a = 0; a < na; ++a) {
    rewards[a] = graph.action(a).expected_reward();
  }

  util::ThreadPool pool(config.num_threads);
  pool.bind_metrics(config.metrics);
  const std::size_t workers = pool.worker_count();
  result.stats.threads_used = workers;
  std::vector<WorkerScratch> scratch(workers);

  // Per-EMD-solve spans are opt-in (SpanProfiler verbose mode): at tens of
  // thousands of microsecond-scale solves per sweep they dominate the
  // trace file, so the default profile carries only sweep/chunk spans.
  obs::SpanProfiler* const profiler = obs::SpanProfiler::current();
  const bool emd_spans = profiler != nullptr && profiler->verbose();

  std::vector<EmdCacheEntry> emd_cache;
  if (config.use_emd_cache) emd_cache.resize(action_pairs.size());

  // Frozen-frontier bookkeeping: a pair is skipped while its own last
  // movement was below the threshold AND the cumulative drift of its input
  // rows since it was last refreshed stays below the threshold. Row drift
  // is the running sum of per-sweep row movements, so slow creep past the
  // threshold still wakes a pair.
  const double freeze_thr =
      config.freeze_threshold > 0.0 ? config.freeze_threshold
                                    : config.epsilon / 4.0;
  std::vector<double> a_pair_last_delta;
  std::vector<double> s_pair_last_delta;
  std::vector<double> a_pair_drift_mark;
  std::vector<double> s_pair_drift_mark;
  std::vector<double> s_row_drift;  // cumulative movement of s_mat rows
  std::vector<double> a_row_drift;  // cumulative movement of a_mat rows
  if (config.skip_frozen_pairs) {
    a_pair_last_delta.assign(action_pairs.size(), kInf);
    s_pair_last_delta.assign(state_pairs.size(), kInf);
    a_pair_drift_mark.assign(action_pairs.size(), 0.0);
    s_pair_drift_mark.assign(state_pairs.size(), 0.0);
    s_row_drift.assign(nv, 0.0);
    a_row_drift.assign(na, 0.0);
  }
  const auto action_input_drift = [&](const ActionVertex& va,
                                      const ActionVertex& vb) {
    double sum = 0.0;
    for (const auto& t : va.transitions) sum += s_row_drift[t.to];
    for (const auto& t : vb.transitions) sum += s_row_drift[t.to];
    return sum;
  };
  const auto state_input_drift = [&](const StateVertex& su,
                                     const StateVertex& sv) {
    double sum = 0.0;
    for (const std::size_t a : su.actions) sum += a_row_drift[a];
    for (const std::size_t a : sv.actions) sum += a_row_drift[a];
    return sum;
  };

  math::Matrix s_prev;
  math::Matrix a_prev;

  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    const obs::ScopedSpan sweep_span{"similarity.sweep", "core"};
    // Declared instrumentation: sweep wall time feeds SimilarityStats and
    // the optional timing metrics, never the fixed point itself.
    // capman-lint: allow(determinism)
    const auto iter_start = std::chrono::steady_clock::now();
    s_prev = s_mat;
    a_prev = a_mat;

    // Lines 3-5: action similarities from reward distance + EMD. Reads
    // only s_prev, writes disjoint a_mat cells per pair — safe to shard.
    pool.parallel_for(
        action_pairs.size(),
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          WorkerScratch& sc = scratch[worker];
          for (std::size_t k = begin; k < end; ++k) {
            const auto [a, b] = action_pairs[k];
            const ActionVertex& va = graph.action(a);
            const ActionVertex& vb = graph.action(b);
            if (config.skip_frozen_pairs && a_pair_last_delta[k] < freeze_thr &&
                action_input_drift(va, vb) - a_pair_drift_mark[k] <
                    freeze_thr) {
              ++sc.action_skipped;
              continue;
            }

            // Ground distances 1 - S over the two transition supports,
            // row-major |T_a| x |T_b| — the exact inputs of this EMD.
            const std::size_t ta = va.transitions.size();
            const std::size_t tb = vb.transitions.size();
            sc.ground.resize(ta * tb);
            for (std::size_t i = 0; i < ta; ++i) {
              for (std::size_t j = 0; j < tb; ++j) {
                sc.ground[i * tb + j] = std::clamp(
                    1.0 - s_prev(va.transitions[i].to, vb.transitions[j].to),
                    0.0, 1.0);
              }
            }

            double d_emd = 0.0;
            bool solved = true;
            if (config.use_emd_cache) {
              EmdCacheEntry& entry = emd_cache[k];
              const std::uint64_t sig = ground_signature(sc.ground);
              if (entry.valid && entry.signature == sig &&
                  entry.ground == sc.ground) {
                d_emd = entry.emd;
                solved = false;
                ++sc.action_cached;
              } else {
                entry.signature = sig;
                entry.ground = sc.ground;
                entry.valid = true;
              }
            }
            if (solved) {
              sc.pa.mass.clear();
              sc.pb.mass.clear();
              for (const auto& t : va.transitions) {
                sc.pa.mass.push_back(t.probability);
              }
              for (const auto& t : vb.transitions) {
                sc.pb.mass.push_back(t.probability);
              }
              const double span_start = emd_spans ? profiler->now_us() : 0.0;
              d_emd = math::earth_movers_distance(
                  sc.pa, sc.pb, [&](std::size_t i, std::size_t j) {
                    return sc.ground[i * tb + j];
                  });
              if (emd_spans) {
                profiler->complete("emd.solve", "math", span_start,
                                   profiler->now_us() - span_start);
              }
              if (config.use_emd_cache) emd_cache[k].emd = d_emd;
              ++sc.action_computed;
            }

            const double d_rwd = std::abs(rewards[a] - rewards[b]);
            const double sim = std::clamp(
                1.0 - (1.0 - config.c_a) * d_rwd - config.c_a * d_emd, 0.0,
                1.0);
            if (config.skip_frozen_pairs) {
              a_pair_last_delta[k] = std::abs(sim - a_mat(a, b));
              a_pair_drift_mark[k] = action_input_drift(va, vb);
            }
            a_mat(a, b) = sim;
            a_mat(b, a) = sim;
          }
        });

    if (config.skip_frozen_pairs) {
      for (std::size_t a = 0; a < na; ++a) {
        double moved = 0.0;
        for (std::size_t b = 0; b < na; ++b) {
          moved = std::max(moved, std::abs(a_mat(a, b) - a_prev(a, b)));
        }
        a_row_drift[a] += moved;
      }
    }

    // Lines 6-7: state similarities via Hausdorff over action neighbours.
    // Reads the a_mat just completed above (barrier between the phases),
    // writes disjoint s_mat cells per pair.
    pool.parallel_for(
        state_pairs.size(),
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          WorkerScratch& sc = scratch[worker];
          for (std::size_t k = begin; k < end; ++k) {
            const auto [u, v] = state_pairs[k];
            const StateVertex& su = graph.state(u);
            const StateVertex& sv = graph.state(v);
            if (config.skip_frozen_pairs && s_pair_last_delta[k] < freeze_thr &&
                state_input_drift(su, sv) - s_pair_drift_mark[k] <
                    freeze_thr) {
              ++sc.state_skipped;
              continue;
            }
            const auto& nu = su.actions;
            const auto& nvv = sv.actions;
            const double h = math::hausdorff(
                nu.size(), nvv.size(), [&](std::size_t i, std::size_t j) {
                  return std::clamp(1.0 - a_mat(nu[i], nvv[j]), 0.0, 1.0);
                });
            const double sim = config.c_s * (1.0 - h);
            if (config.skip_frozen_pairs) {
              s_pair_last_delta[k] = std::abs(sim - s_mat(u, v));
              s_pair_drift_mark[k] = state_input_drift(su, sv);
            }
            s_mat(u, v) = sim;
            s_mat(v, u) = sim;
            ++sc.state_computed;
          }
        });

    if (config.skip_frozen_pairs) {
      for (std::size_t u = 0; u < nv; ++u) {
        double moved = 0.0;
        for (std::size_t v = 0; v < nv; ++v) {
          moved = std::max(moved, std::abs(s_mat(u, v) - s_prev(u, v)));
        }
        s_row_drift[u] += moved;
      }
    }

    SimilarityStats& stats = result.stats;
    stats.action_pairs_total += action_pairs.size();
    stats.state_pairs_total += state_pairs.size();
    for (WorkerScratch& sc : scratch) {
      stats.action_pairs_computed += sc.action_computed;
      stats.action_pairs_cached += sc.action_cached;
      stats.action_pairs_skipped += sc.action_skipped;
      stats.state_pairs_computed += sc.state_computed;
      stats.state_pairs_skipped += sc.state_skipped;
      sc.action_computed = sc.action_cached = sc.action_skipped = 0;
      sc.state_computed = sc.state_skipped = 0;
    }
    // capman-lint: allow(determinism)
    const auto iter_end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(iter_end - iter_start)
            .count();
    stats.iteration_ms.push_back(ms);
    stats.total_ms += ms;

    ++result.iterations;
    // Contraction-aware convergence: per-iteration movement delta implies a
    // distance to the fixed point of at most delta * c / (1 - c); stopping
    // on raw delta would under-iterate exactly when C_A -> 1 (the regime
    // Fig. 16 studies). Reduced on the calling thread in a fixed order, so
    // the stopping decision is identical for every thread count.
    const double delta = std::max(s_mat.linf_distance(s_prev),
                                  a_mat.linf_distance(a_prev));
    if (delta * config.c_a <= config.epsilon * (1.0 - config.c_a)) {
      result.converged = true;
      break;
    }
  }
  assert(s_mat.all_in(0.0, 1.0));
  assert(a_mat.all_in(0.0, 1.0));
  assert(result.stats.consistent());
  publish(result);
  return result;
}

}  // namespace capman::core
