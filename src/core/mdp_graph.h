// The bipartite MDP graph G_M = {V, Lambda, E, psi, p, r} of paper
// Section III-B: state vertices V, action vertices Lambda (one per observed
// (state, decision-action) pair), unweighted decision edges E from states
// to their action vertices, and transition edges psi from action vertices
// to successor states weighted by probability p and reward r. A state with
// no outgoing action vertex is absorbing (Eq. 3).
//
// G_M corresponds one-to-one with the MDP, so solving the graph (value
// iteration, structural similarity) solves the original problem.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mdp.h"

namespace capman::core {

/// One psi edge: taking the owning action vertex lands in state `to` with
/// probability p, collecting reward r.
struct TransitionEdge {
  std::size_t to;      // state-vertex index
  double probability;  // p; the edges of one action vertex sum to 1
  double reward;       // r, in [0, 1]
};

/// One action vertex of Lambda: an observed (state, decision-action) pair
/// with its learned transition distribution. Its transition support is
/// what the EMD of Algorithm 1 compares across action pairs.
struct ActionVertex {
  std::size_t source;      // state-vertex index
  std::size_t action_id;   // DecisionAction::index()
  std::vector<TransitionEdge> transitions;  // psi edges
  /// Expected immediate reward sum(p * r).
  [[nodiscard]] double expected_reward() const;
};

/// One state vertex of V with its decision edges E. `actions` is the
/// action-neighbourhood N_u the Hausdorff step of Algorithm 1 compares.
struct StateVertex {
  std::size_t state_id;  // CapmanState::index()
  std::vector<std::size_t> actions;  // E edges: indices into action vertices
  /// No observed outgoing action: the Eq. 3 base cases pin this state's
  /// similarity row, and Algorithm 1 never recomputes it.
  [[nodiscard]] bool absorbing() const { return actions.empty(); }
};

class MdpGraph {
 public:
  MdpGraph() = default;

  /// Build from learned statistics; only (s, a) pairs with at least
  /// `min_observations` (possibly decayed) observations become action
  /// vertices, and only states that appear (as source or target) become
  /// state vertices.
  static MdpGraph from_mdp(const Mdp& mdp, double min_observations);

  /// Direct construction for synthetic graphs in tests/benches.
  static MdpGraph from_parts(std::vector<StateVertex> states,
                             std::vector<ActionVertex> actions);

  /// |V| — the side length of the state-similarity matrix.
  [[nodiscard]] std::size_t state_count() const { return states_.size(); }
  /// |Lambda| — the side length of the action-similarity matrix.
  [[nodiscard]] std::size_t action_count() const { return actions_.size(); }
  /// Vertex accessors; indices are dense in [0, count) and stable for the
  /// lifetime of the graph (solvers key matrices and caches by them).
  [[nodiscard]] const StateVertex& state(std::size_t i) const {
    return states_[i];
  }
  [[nodiscard]] const ActionVertex& action(std::size_t i) const {
    return actions_[i];
  }
  [[nodiscard]] const std::vector<StateVertex>& states() const {
    return states_;
  }
  [[nodiscard]] const std::vector<ActionVertex>& actions() const {
    return actions_;
  }

  /// Vertex index of a CapmanState index, or npos when absent.
  [[nodiscard]] std::size_t vertex_of(std::size_t state_id) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Maximum out-degree of action vertices (K_max of the paper's
  /// complexity analysis) and of state vertices (L_max).
  [[nodiscard]] std::size_t max_action_out_degree() const;
  [[nodiscard]] std::size_t max_state_out_degree() const;

 private:
  std::vector<StateVertex> states_;
  std::vector<ActionVertex> actions_;
  std::vector<std::size_t> state_to_vertex_;  // CapmanState id -> vertex
};

}  // namespace capman::core
