#include "core/controller.h"

#include <algorithm>
#include <stdexcept>

namespace capman::core {

namespace {
// Recalibration backoff: early discharge learns quickly, late discharge
// barely changes the model, so intervals stretch (the paper runs the solve
// "when the device is not busy at the background").
constexpr double kBackoffFactor = 1.6;
constexpr double kMaxIntervalS = 300.0;
}  // namespace

CapmanController::CapmanController(const CapmanConfig& config,
                                   std::uint64_t seed)
    : config_(config),
      scheduler_(config, seed),
      next_recalibration_s_(config.recalibration_interval.value()),
      recal_interval_s_(config.recalibration_interval.value()) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid CapmanConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

battery::BatterySelection CapmanController::on_event(
    const workload::Action& event, const device::DeviceStateVector& device,
    battery::BatterySelection current, util::Seconds now, bool emergency,
    BudgetLevel granted) {
  // Close the previous interval and learn from it.
  const CapmanState arrived{device, current};
  if (auto obs = profiler_.close_interval(arrived)) {
    scheduler_.observe(*obs);
  }

  scheduler_.advance_time(now.value());
  DecideRequest req;
  req.event = event;
  req.device = device;
  req.current = current;
  req.budget = granted;
  req.allow_exploration = !emergency;
  const DecideResult decision = scheduler_.decide(req);
  battery::BatterySelection choice = decision.battery;
  BudgetLevel budget = decision.budget;
  if (emergency) {
    if (choice == current) {
      // The rail is sagging under the current cell; staying put means dying.
      choice = current == battery::BatterySelection::kBig
                   ? battery::BatterySelection::kLittle
                   : battery::BatterySelection::kBig;
    }
    // Comparator-relax semantics: a tripped comparator drops the budget to
    // the lean level until a calm consultation raises it again.
    if (config_.learn_budget) budget = BudgetLevel::kEco;
  }
  // Dwell control: honor the minimum time between voluntary switches
  // (except in emergencies).
  if (!emergency && choice != current &&
      now.value() - last_switch_s_ < config_.min_switch_dwell.value()) {
    choice = current;
  }
  if (choice != current) last_switch_s_ = now.value();
  last_budget_level_ = budget;

  // Without budget learning the MDP only allocates the level-kFull plane,
  // so the recorded action must stay inside it.
  profiler_.begin_interval(
      CapmanState{device, choice},
      DecisionAction{event, choice,
                     config_.learn_budget ? budget : BudgetLevel::kFull});
  return choice;
}

void CapmanController::record_step(util::Joules delivered, util::Joules losses,
                                   bool demand_met) {
  profiler_.record(delivered, losses, demand_met);
}

util::Watts CapmanController::maintenance(util::Seconds now) {
  if (now.value() >= next_recalibration_s_) {
    solve_seconds_ += scheduler_.recalibrate();
    recal_interval_s_ = std::min(recal_interval_s_ * kBackoffFactor,
                                 kMaxIntervalS);
    next_recalibration_s_ = now.value() + recal_interval_s_;
  }
  return config_.maintenance_power;
}

}  // namespace capman::core
