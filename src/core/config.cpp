#include "core/config.h"

#include "core/similarity.h"
#include "core/value_iteration.h"

namespace capman::core {

SimilarityConfig CapmanConfig::similarity_config() const {
  SimilarityConfig sim_config;
  sim_config.c_s = c_s;
  sim_config.c_a = c_a;
  sim_config.epsilon = epsilon;
  sim_config.max_iterations = max_iterations;
  sim_config.absorbing_distance = absorbing_distance;
  sim_config.num_threads = similarity_threads;
  sim_config.use_emd_cache = similarity_emd_cache;
  sim_config.skip_frozen_pairs = similarity_skip_frozen;
  return sim_config;
}

ValueIterationConfig CapmanConfig::value_iteration_config() const {
  ValueIterationConfig vi_config;
  vi_config.rho = rho;
  return vi_config;
}

std::vector<std::string> CapmanConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
  require(recalibration_interval.value() > 0.0,
          "recalibration_interval must be > 0");
  require(min_observations > 0.0, "min_observations must be > 0");
  require(recency_decay > 0.0 && recency_decay <= 1.0,
          "recency_decay must be in (0, 1]");
  require(exploration_initial >= 0.0 && exploration_initial <= 1.0,
          "exploration_initial must be in [0, 1]");
  require(exploration_decay_per_event > 0.0 &&
              exploration_decay_per_event <= 1.0,
          "exploration_decay_per_event must be in (0, 1]");
  require(exploration_floor >= 0.0 &&
              exploration_floor <= exploration_initial,
          "exploration_floor must be in [0, exploration_initial]");
  require(min_switch_dwell.value() >= 0.0, "min_switch_dwell must be >= 0");
  require(maintenance_power.value() >= 0.0,
          "maintenance_power must be >= 0");
  for (auto& error : similarity_config().validate()) {
    errors.push_back("similarity: " + error);
  }
  for (auto& error : value_iteration_config().validate()) {
    errors.push_back("value_iteration: " + error);
  }
  return errors;
}

}  // namespace capman::core
