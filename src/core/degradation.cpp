#include "core/degradation.h"

#include <algorithm>
#include <stdexcept>

namespace capman::core {

std::vector<std::string> DegradationConfig::validate() const {
  std::vector<std::string> errors;
  if (!(detect_after.value() > 0.0)) {
    errors.push_back("detect_after must be > 0");
  }
  if (!(retry_initial.value() > 0.0)) {
    errors.push_back("retry_initial must be > 0");
  }
  if (!(retry_backoff >= 1.0)) {
    errors.push_back("retry_backoff must be >= 1");
  }
  if (!(retry_max >= retry_initial)) {
    errors.push_back("retry_max must be >= retry_initial");
  }
  return errors;
}

void DegradationStats::publish(obs::MetricsRegistry& registry) const {
  registry.counter("guard/failures_detected").add(failures_detected);
  registry.counter("guard/fallback_episodes").add(fallback_episodes);
  registry.counter("guard/retries").add(retries);
  registry.gauge("guard/in_fallback").set(in_fallback ? 1.0 : 0.0);
}

DegradationStats DegradationStats::from_snapshot(
    const obs::MetricsSnapshot& snap) {
  DegradationStats stats;
  stats.failures_detected = snap.counter_or("guard/failures_detected");
  stats.fallback_episodes = snap.counter_or("guard/fallback_episodes");
  stats.retries = snap.counter_or("guard/retries");
  // The gauge encodes a bool as exactly 0.0 or 1.0; exact compare is the
  // correct decoding.  capman-lint: allow(float-compare)
  stats.in_fallback = snap.gauge_or("guard/in_fallback") != 0.0;
  return stats;
}

DegradationGuard::DegradationGuard(const DegradationConfig& config)
    : config_(config) {
  if (!config_.enabled) return;  // disabled guard never reads its knobs
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid DegradationConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

battery::BatterySelection DegradationGuard::filter(
    util::Seconds now, battery::BatterySelection observed,
    battery::BatterySelection desired, bool emergency, bool feasible) {
  if (!config_.enabled) return desired;
  const double t = now.value();

  if (!feasible) {
    // The management facility itself would refuse this switch (the target
    // cell cannot carry the present load). That is a protection feature,
    // not an actuator fault: park the watchdog and keep legacy behavior —
    // hold the safe cell while in fallback, otherwise let the request go
    // out and be refused as it always was.
    expected_.reset();
    return fallback_ ? observed : desired;
  }

  if (fallback_) {
    if (observed != desired) {
      // Still stuck on the wrong cell. Ride the active battery's safe
      // policy between retries; re-issue the switch on the backoff
      // schedule (or immediately when the rail monitor is screaming).
      if (emergency || t >= next_retry_s_) {
        ++stats_.retries;
        retry_interval_s_ = std::min(retry_interval_s_ * config_.retry_backoff,
                                     config_.retry_max.value());
        next_retry_s_ = t + retry_interval_s_;
        return desired;
      }
      return observed;
    }
    // The comparator latched what the scheduler wants (a retry landed, the
    // fault cleared, or the scheduler stopped wanting the stuck
    // transition): resume normal operation.
    fallback_ = false;
    stats_.in_fallback = false;
    expected_.reset();
  }

  if (desired == observed) {
    // Nothing in flight; clear any switch expectation.
    expected_.reset();
    return desired;
  }
  if (!expected_ || *expected_ != desired) {
    // A new switch is being initiated; start the watchdog.
    expected_ = desired;
    expected_since_s_ = t;
    return desired;
  }
  if (t - expected_since_s_ > config_.detect_after.value()) {
    // The facility had orders of magnitude more time than its latency and
    // the comparator never flipped: the switch failed (stuck comparator,
    // dropped request, dead target rail). Degrade gracefully.
    ++stats_.failures_detected;
    ++stats_.fallback_episodes;
    stats_.in_fallback = true;
    fallback_ = true;
    retry_interval_s_ = config_.retry_initial.value();
    next_retry_s_ = t + retry_interval_s_;
    return observed;
  }
  return desired;
}

}  // namespace capman::core
