#include "core/power_budget.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace capman::core {

const char* to_string(CapMethod method) {
  switch (method) {
    case CapMethod::kRelax: return "relax";
    case CapMethod::kStatic: return "static";
  }
  return "?";
}

util::Milliwatts CorecapSplit::cap_for(device::ConsumerKind kind) const {
  switch (kind) {
    case device::ConsumerKind::kCpu: return cpu_mw;
    case device::ConsumerKind::kScreen: return screen_mw;
    case device::ConsumerKind::kWifi: return wifi_mw;
    case device::ConsumerKind::kTec: return tec_mw;
  }
  return util::Milliwatts{};
}

std::vector<CorecapRow> default_corecap_table() {
  using namespace util::literals;
  // budget     cpu-priority {cpu, screen, wifi, tec}
  //            cooling-priority {cpu, screen, wifi, tec}
  return {
      {1000.0_mw,
       {620.0_mw, 205.0_mw, 120.0_mw, 0.0_mw},
       {420.0_mw, 205.0_mw, 120.0_mw, 200.0_mw}},
      {1800.0_mw,
       {1150.0_mw, 320.0_mw, 250.0_mw, 0.0_mw},
       {520.0_mw, 205.0_mw, 150.0_mw, 900.0_mw}},
      {2800.0_mw,
       {1700.0_mw, 500.0_mw, 500.0_mw, 0.0_mw},
       {620.0_mw, 240.0_mw, 170.0_mw, 1700.0_mw}},
      {3600.0_mw,
       {1950.0_mw, 700.0_mw, 850.0_mw, 0.0_mw},
       {900.0_mw, 450.0_mw, 500.0_mw, 1700.0_mw}},
      {4400.0_mw,
       {2050.0_mw, 900.0_mw, 1350.0_mw, 100.0_mw},
       {1250.0_mw, 650.0_mw, 800.0_mw, 1700.0_mw}},
      {5400.0_mw,
       {2050.0_mw, 1040.0_mw, 2080.0_mw, 230.0_mw},
       {1650.0_mw, 900.0_mw, 1150.0_mw, 1700.0_mw}},
  };
}

namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

void validate_split(const CorecapRow& row, const CorecapSplit& split,
                    const CorecapSplit* previous, std::size_t index,
                    const char* name, std::vector<std::string>& errors) {
  const std::string where = "corecaps[" + std::to_string(index) + "]." + name;
  const util::Milliwatts zero;
  if (split.cpu_mw < zero || split.screen_mw < zero || split.wifi_mw < zero ||
      split.tec_mw < zero) {
    errors.push_back(where + " caps must be >= 0");
  }
  if (split.total() > row.budget_mw) {
    errors.push_back(where + " caps must sum to <= budget_mw");
  }
  if (previous != nullptr &&
      (split.cpu_mw < previous->cpu_mw || split.screen_mw < previous->screen_mw ||
       split.wifi_mw < previous->wifi_mw || split.tec_mw < previous->tec_mw)) {
    errors.push_back(where + " caps must be non-decreasing across rows");
  }
}

}  // namespace

std::vector<std::string> PowerBudgetArbiterConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  const util::Milliwatts zero_mw;
  require(base_budget_mw > zero_mw, "base_budget_mw must be > 0");
  require(min_budget_mw > zero_mw && min_budget_mw <= base_budget_mw,
          "min_budget_mw must be > 0 and <= base_budget_mw");
  require(soc_floor >= 0.0 && soc_floor < 1.0, "soc_floor must be in [0, 1)");
  require(soc_knee > soc_floor && soc_knee <= 1.0,
          "soc_knee must be in (soc_floor, 1]");
  require(rail_min_v > 0.0, "rail_min_v must be > 0");
  require(nominal_v > rail_min_v, "nominal_v must be > rail_min_v");
  require(rebudget_trigger_v >= rail_min_v,
          "rebudget_trigger_v must be >= rail_min_v");
  require(min_rebudget_gap_s > 0.0, "min_rebudget_gap_s must be > 0");
  require(supercap_margin_fill > 0.0 && supercap_margin_fill <= 1.0,
          "supercap_margin_fill must be in (0, 1]");
  require(skin_soft_c < skin_hard_c, "skin_soft_c must be < skin_hard_c");
  require(cell_soft_c < cell_hard_c, "cell_soft_c must be < cell_hard_c");
  require(static_margin > 0.0 && static_margin <= 1.0,
          "static_margin must be in (0, 1]");
  require(cooling_priority_hotspot_c > 0.0,
          "cooling_priority_hotspot_c must be > 0");
  bool fractions_ok = true;
  for (std::size_t i = 0; i < level_fraction.size(); ++i) {
    if (level_fraction[i] <= util::Ratio{0.0} ||
        level_fraction[i] > util::Ratio{1.0}) {
      fractions_ok = false;
    }
    if (i > 0 && level_fraction[i] > level_fraction[i - 1]) {
      fractions_ok = false;
    }
  }
  require(fractions_ok,
          "level_fraction values must be in (0, 1] and non-increasing");
  if (corecaps.empty()) {
    errors.emplace_back("corecaps must not be empty");
    return errors;
  }
  for (std::size_t i = 0; i < corecaps.size(); ++i) {
    const CorecapRow& row = corecaps[i];
    if (row.budget_mw <= zero_mw ||
        (i > 0 && row.budget_mw <= corecaps[i - 1].budget_mw)) {
      errors.push_back("corecaps[" + std::to_string(i) +
                       "].budget_mw must be > 0 and strictly increasing");
    }
    const CorecapRow* prev = i > 0 ? &corecaps[i - 1] : nullptr;
    validate_split(row, row.cpu_priority,
                   prev != nullptr ? &prev->cpu_priority : nullptr, i,
                   "cpu_priority", errors);
    validate_split(row, row.cooling_priority,
                   prev != nullptr ? &prev->cooling_priority : nullptr, i,
                   "cooling_priority", errors);
  }
  return errors;
}

PowerBudgetArbiter::PowerBudgetArbiter(const PowerBudgetArbiterConfig& config)
    : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid PowerBudgetArbiterConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

util::Milliwatts PowerBudgetArbiter::derive_budget_mw(
    const BudgetInputs& in) const {
  const double soc = in.active == battery::BatterySelection::kBig
                         ? in.big_soc
                         : in.little_soc;
  const double soc_factor =
      clamp01((soc - config_.soc_floor) / (config_.soc_knee - config_.soc_floor));
  // Comparator-less boards cannot read the live rail: kStatic takes its
  // worst-case margin in rebudget() instead of a voltage factor here.
  double volt_factor = 1.0;
  if (config_.cap_method == CapMethod::kRelax) {
    volt_factor = clamp01((in.rail_v - config_.rail_min_v) /
                          (config_.nominal_v - config_.rail_min_v));
  }
  const double cap_factor =
      clamp01(in.supercap_fill / config_.supercap_margin_fill);
  const double skin_factor =
      1.0 - clamp01((in.skin_c - config_.skin_soft_c) /
                    (config_.skin_hard_c - config_.skin_soft_c));
  const double cell_factor =
      1.0 - clamp01((in.cell_c - config_.cell_soft_c) /
                    (config_.cell_hard_c - config_.cell_soft_c));
  // The tightest constraint rules; multiplying would over-derate when
  // several factors dip together.
  const double headroom = std::min(
      {soc_factor, volt_factor, cap_factor, skin_factor, cell_factor});
  return std::max(config_.min_budget_mw, headroom * config_.base_budget_mw);
}

const CorecapRow& PowerBudgetArbiter::row_for(util::Milliwatts effective_mw,
                                              std::size_t* index) const {
  // Highest row whose activation budget fits; below the first row the
  // first row's caps apply and the shed loop trims them to the budget.
  std::size_t chosen = 0;
  for (std::size_t i = 0; i < config_.corecaps.size(); ++i) {
    if (config_.corecaps[i].budget_mw <= effective_mw) chosen = i;
  }
  if (index != nullptr) *index = chosen;
  return config_.corecaps[chosen];
}

BudgetGrant PowerBudgetArbiter::rebudget(
    const BudgetInputs& in, BudgetLevel level,
    std::span<device::PowerConsumer* const> consumers) {
  BudgetGrant grant;
  grant.level = level;
  grant.derived_mw = derive_budget_mw(in);
  util::Milliwatts effective =
      grant.derived_mw * config_.level_fraction[static_cast<std::size_t>(level)];
  if (config_.cap_method == CapMethod::kStatic) {
    effective *= config_.static_margin;
  }
  effective = std::max(effective, config_.min_budget_mw);
  grant.effective_mw = effective;
  grant.cooling_priority = in.hotspot_c > config_.cooling_priority_hotspot_c;

  const CorecapRow& row = row_for(effective, &grant.row);
  const CorecapSplit& split =
      grant.cooling_priority ? row.cooling_priority : row.cpu_priority;

  struct Slot {
    device::PowerConsumer* consumer = nullptr;
    device::ConsumerCapability cap;
    util::Milliwatts target;
    int priority = 0;
  };
  std::array<Slot, device::kConsumerKindCount> slots;
  std::size_t count = 0;
  util::Milliwatts total;
  for (device::PowerConsumer* consumer : consumers) {
    if (consumer == nullptr || count >= slots.size()) continue;
    Slot& slot = slots[count++];
    slot.consumer = consumer;
    slot.cap = consumer->capability();
    slot.target = std::clamp(split.cap_for(consumer->kind()),
                             slot.cap.min_draw_mw, slot.cap.max_draw_mw);
    slot.priority = slot.cap.shed_priority;
    // Cooling-priority rows shed the CPU before the TEC: a hot die buys
    // its cooler with its own cycles.
    if (grant.cooling_priority) {
      if (consumer->kind() == device::ConsumerKind::kCpu) slot.priority = 2;
      if (consumer->kind() == device::ConsumerKind::kTec) slot.priority = 3;
    }
    total += slot.target;
  }

  // FastCap-style fair trim: shed the deficit in priority order, never
  // below a consumer's floor. When the floors alone exceed the budget the
  // grant honestly reports granted_mw > effective_mw (zero-headroom case).
  util::Milliwatts deficit = total - effective;
  if (deficit > util::Milliwatts{}) {
    std::array<std::size_t, device::kConsumerKindCount> order{};
    for (std::size_t i = 0; i < count; ++i) order[i] = i;
    std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(count),
              [&slots](std::size_t a, std::size_t b) {
                if (slots[a].priority != slots[b].priority) {
                  return slots[a].priority < slots[b].priority;
                }
                return slots[a].consumer->kind() < slots[b].consumer->kind();
              });
    for (std::size_t i = 0; i < count && deficit > util::Milliwatts{}; ++i) {
      Slot& slot = slots[order[i]];
      const util::Milliwatts reducible = slot.target - slot.cap.min_draw_mw;
      const util::Milliwatts take = std::min(deficit, reducible);
      slot.target -= take;
      deficit -= take;
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    const util::Milliwatts granted =
        slots[i].consumer->apply_cap(slots[i].target);
    grant.by_kind[static_cast<std::size_t>(slots[i].consumer->kind())] =
        granted;
    grant.granted_mw += granted;
  }

  ++rebudgets_;
  if (grant.cooling_priority) ++cooling_rebudgets_;
  if (!any_grant_ || grant.granted_mw < min_granted_mw_) {
    min_granted_mw_ = grant.granted_mw;
    any_grant_ = true;
  }
  last_ = grant;
  return grant;
}

void PowerBudgetArbiter::publish_metrics(obs::MetricsRegistry& registry) const {
  registry.counter("arbiter/rebudgets").add(rebudgets_);
  registry.counter("arbiter/voltage_triggers").add(voltage_triggers_);
  registry.counter("arbiter/cooling_rebudgets").add(cooling_rebudgets_);
  // capman-lint: allow(raw-unit, gauges export plain doubles)
  registry.gauge("arbiter/budget_mw").set(last_.derived_mw.raw());
  // capman-lint: allow(raw-unit, gauges export plain doubles)
  registry.gauge("arbiter/granted_mw").set(last_.granted_mw.raw());
  // capman-lint: allow(raw-unit, gauges export plain doubles)
  registry.gauge("arbiter/min_granted_mw").set(min_granted_mw_.raw());
}

}  // namespace capman::core
