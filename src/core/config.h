// CAPMAN runtime configuration (paper Section III / V).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.h"

namespace capman::core {

struct SimilarityConfig;
struct ValueIterationConfig;

struct CapmanConfig {
  // Discount factor rho: the competitiveness knob of the paper's
  // O(1/(1-rho)) bound and the x-axis of Fig. 16. The paper's example
  // relaxes rho to 0.05 for an O(1.05)-competitive bound; scheduling
  // quality favors a moderate discount.
  double rho = 0.80;

  // Similarity discounts (Algorithm 1). The bound of Eq. 10 is proved for
  // C_S = 1, C_A = rho; runtime calibration may use softer values.
  double c_s = 1.0;
  double c_a = 0.80;

  // Convergence precision epsilon for Algorithm 1 and value iteration.
  double epsilon = 0.01;
  std::size_t max_iterations = 60;

  // Distance d_{u,v} between two absorbing states (Eq. 3 base case).
  double absorbing_distance = 1.0;

  // Similarity-engine knobs (see SimilarityConfig in core/similarity.h).
  // Threads for the per-sweep pair fan-out of Algorithm 1; 0 = one per
  // hardware core. Bit-identical results for every value.
  std::size_t similarity_threads = 0;
  // Exact EMD memoisation across sweeps (bit-identical on/off).
  bool similarity_emd_cache = true;
  // Frozen-pair frontier: skips pairs that stopped moving. Approximate
  // (bounded by epsilon/4 per sweep), so off for the default scheduler.
  bool similarity_skip_frozen = false;

  // Background recalibration cadence: how often the MDP graph is rebuilt
  // and Algorithm 1 re-run ("executed when the device is not busy at the
  // background").
  util::Seconds recalibration_interval{20.0};
  // Minimum (decayed) observations of a (state, action) pair before its
  // statistics are trusted in the graph.
  double min_observations = 1.5;
  // Exponential forgetting of per-pair statistics: new observations fade
  // old evidence so the learned model tracks the battery's aging reality
  // within a discharge cycle.
  double recency_decay = 0.93;

  // Exploration schedule for online learning (epsilon-greedy, decaying).
  double exploration_initial = 0.35;
  double exploration_decay_per_event = 0.9995;
  double exploration_floor = 0.01;

  // Minimum dwell between voluntary battery switches (the switch facility
  // itself takes ~1 ms; this avoids pathological chatter).
  util::Seconds min_switch_dwell{0.25};

  // CPU power charged for maintaining the MDP representation (the reason
  // CAPMAN ties with Dual/Heuristic on stationary Geekbench, Fig. 12a).
  util::Watts maintenance_power = util::milliwatts(25.0);

  // Learn the power-budget level jointly with the battery selection: the
  // action space grows from syscall x battery to syscall x battery x
  // BudgetLevel and decide() returns the level of the winning action.
  // Off by default — the decision path is then bit-identical to the
  // pre-budget scheduler and the MDP allocates only the kFull plane.
  bool learn_budget = false;

  /// The similarity-engine view of this config (Algorithm 1 knobs).
  /// Runtime bindings (metrics registry, timing switch) stay at the call
  /// site — see OnlineScheduler::recalibrate().
  [[nodiscard]] SimilarityConfig similarity_config() const;
  /// The Bellman-solver view of this config (Eq. 6-9 knobs).
  [[nodiscard]] ValueIterationConfig value_iteration_config() const;

  /// Human-readable configuration errors; empty means valid. Checks this
  /// struct's own knobs and the derived similarity / value-iteration
  /// configs. Checked by the CapmanController constructor (throws
  /// std::invalid_argument).
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace capman::core
