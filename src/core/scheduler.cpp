#include "core/scheduler.h"

#include <chrono>
#include <cmath>
#include <limits>

#include "obs/spans.h"

namespace capman::core {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t sa_key(std::size_t state_id, std::size_t action_id) {
  return (static_cast<std::uint64_t>(state_id) << 16) | action_id;
}
}  // namespace

void DecisionStats::publish(obs::MetricsRegistry& registry) const {
  registry.counter("scheduler/decisions_exact").add(exact);
  registry.counter("scheduler/decisions_transferred").add(transferred);
  registry.counter("scheduler/decisions_fallback").add(fallback);
  registry.counter("scheduler/decisions_explored").add(explored);
}

DecisionStats DecisionStats::from_snapshot(const obs::MetricsSnapshot& snap) {
  DecisionStats stats;
  stats.exact = snap.counter_or("scheduler/decisions_exact");
  stats.transferred = snap.counter_or("scheduler/decisions_transferred");
  stats.fallback = snap.counter_or("scheduler/decisions_fallback");
  stats.explored = snap.counter_or("scheduler/decisions_explored");
  return stats;
}

OnlineScheduler::OnlineScheduler(const CapmanConfig& config,
                                 std::uint64_t seed)
    : config_(config),
      rng_(seed),
      // Without budget learning only the level-kFull plane is reachable;
      // allocating just that plane keeps fleet-scale memory flat.
      mdp_(config.recency_decay, config.learn_budget
                                     ? decision_action_space_size()
                                     : base_decision_action_space_size()),
      exploration_(config.exploration_initial) {}

void OnlineScheduler::observe(const Observation& obs) { mdp_.observe(obs); }

double OnlineScheduler::recalibrate() {
  const obs::ScopedSpan span{"scheduler.recalibrate", "core"};
  // Declared instrumentation: wall time is only reported, never read back
  // into the decision path.  capman-lint: allow(determinism)
  const auto start = std::chrono::steady_clock::now();
  graph_ = MdpGraph::from_mdp(mdp_, config_.min_observations);
  SimilarityConfig sim_config = config_.similarity_config();
  sim_config.metrics = metrics();
  sim_config.publish_timings = publish_timings();
  similarity_ = compute_structural_similarity(graph_, sim_config);

  values_ = solve_values(graph_, config_.value_iteration_config());

  action_vertex_index_.clear();
  for (std::size_t av = 0; av < graph_.action_count(); ++av) {
    const auto& a = graph_.action(av);
    action_vertex_index_[sa_key(graph_.state(a.source).state_id,
                                a.action_id)] = av;
  }
  ++recals_;
  // capman-lint: allow(determinism)
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();
  if (metrics() != nullptr) {
    metrics()->counter("scheduler/recalibrations").add();
    metrics()->counter("scheduler/vi_sweeps").add(values_.iterations);
    metrics()->gauge("scheduler/graph_states")
        .set(static_cast<double>(graph_.state_count()));
    metrics()->gauge("scheduler/graph_actions")
        .set(static_cast<double>(graph_.action_count()));
    if (publish_timings()) {
      metrics()
          ->histogram("scheduler/recalibrate_ms",
                      {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0})
          .observe(seconds * 1000.0);
    }
  }
  return seconds;
}

double OnlineScheduler::solved_q(std::size_t state_id,
                                 std::size_t action_id) const {
  const auto it = action_vertex_index_.find(sa_key(state_id, action_id));
  if (it == action_vertex_index_.end()) return kNaN;
  return values_.action_values[it->second];
}

double OnlineScheduler::best_q_over_levels(std::size_t state_id,
                                           const workload::Action& event,
                                           battery::BatterySelection battery,
                                           BudgetLevel* best_level) const {
  const std::size_t levels = config_.learn_budget ? kBudgetLevelCount : 1;
  double best_q = kNaN;
  BudgetLevel level = BudgetLevel::kFull;
  // Ascending level order + strict improvement: ties break toward the
  // higher budget (kFull first), the conservative default.
  for (std::size_t l = 0; l < levels; ++l) {
    const DecisionAction action{event, battery, static_cast<BudgetLevel>(l)};
    const double q = solved_q(state_id, action.index());
    if (!std::isnan(q) && (std::isnan(best_q) || q > best_q)) {
      best_q = q;
      level = static_cast<BudgetLevel>(l);
    }
  }
  if (best_level != nullptr) *best_level = level;
  return best_q;
}

double OnlineScheduler::transferred_q(std::size_t state_id,
                                      workload::Syscall kind,
                                      battery::BatterySelection battery,
                                      std::int64_t* matched_state,
                                      BudgetLevel* matched_level) const {
  const std::size_t query_vertex = graph_.vertex_of(state_id);
  double best_sim = 0.0;
  double best_q = kNaN;
  std::int64_t best_state = -1;
  BudgetLevel best_level = BudgetLevel::kFull;
  // Scan action vertices whose syscall kind and battery match; weight each
  // candidate's Q by the structural similarity between its source state and
  // the query state (exact state match was already handled by solved_q).
  // Budget levels transfer freely: the matched action's level rides along.
  for (std::size_t av = 0; av < graph_.action_count(); ++av) {
    const auto& a = graph_.action(av);
    const DecisionAction da = DecisionAction::from_index(a.action_id);
    if (da.syscall.kind != kind || da.battery != battery) continue;
    double sim = 0.2;  // floor: same-kind experience is weak evidence
    if (query_vertex != MdpGraph::npos) {
      sim = similarity_.state_similarity(query_vertex, a.source);
    }
    if (sim > best_sim) {
      best_sim = sim;
      best_q = values_.action_values[av];
      best_state = static_cast<std::int64_t>(graph_.state(a.source).state_id);
      best_level = da.budget;
    }
  }
  if (best_sim <= 0.05) return kNaN;
  if (matched_state != nullptr) *matched_state = best_state;
  if (matched_level != nullptr) *matched_level = best_level;
  return best_q;
}

battery::BatterySelection OnlineScheduler::kind_prior(
    workload::Syscall kind, std::uint8_t param_bucket) {
  using workload::Syscall;
  switch (kind) {
    // Surge-type calls: short power spikes the LITTLE battery absorbs with
    // a shallow V-edge.
    case Syscall::kScreenWake:
    case Syscall::kAppLaunch:
    case Syscall::kUserTouch:
    case Syscall::kSyncDaemon:
    case Syscall::kNetRecvStart:
    case Syscall::kNetSendStart:
    case Syscall::kVibrate:
      return battery::BatterySelection::kLittle;
    // A CPU burst is a spike only at the top intensity bucket; sustained
    // compute blocks belong on the big battery.
    case Syscall::kCpuBurst:
      return param_bucket >= 9 ? battery::BatterySelection::kLittle
                               : battery::BatterySelection::kBig;
    default:
      return battery::BatterySelection::kBig;
  }
}

void OnlineScheduler::advance_time(double now_s) {
  // Exploration decays with elapsed time (half-life ~2 minutes), not with
  // event count: sparse workloads (Geekbench) must not explore forever.
  const double elapsed = now_s - last_time_s_;
  if (elapsed > 0.0) {
    exploration_ = std::max(config_.exploration_floor,
                            exploration_ * std::exp(-elapsed / 170.0));
    last_time_s_ = now_s;
  }
}

DecideResult OnlineScheduler::decide(const DecideRequest& req) {
  exploration_ = std::max(config_.exploration_floor,
                          exploration_ * config_.exploration_decay_per_event);
  last_detail_ = obs::DecisionDetail{};
  // Without budget learning the level axis collapses to kFull: the ladder
  // below then touches exactly the pre-budget action indices and draws
  // exactly the pre-budget random numbers (bit-identity contract); the
  // result simply echoes the level in force.
  const BudgetLevel keep_level =
      config_.learn_budget ? req.budget : BudgetLevel::kFull;
  if (req.allow_exploration && rng_.chance(exploration_)) {
    ++stats_.explored;
    last_detail_.source = obs::DecisionDetail::Source::kExplored;
    DecideResult out;
    out.battery = rng_.chance(0.5) ? battery::BatterySelection::kBig
                                   : battery::BatterySelection::kLittle;
    out.budget = config_.learn_budget
                     ? static_cast<BudgetLevel>(
                           rng_.uniform_index(kBudgetLevelCount))
                     : req.budget;
    return out;
  }

  const CapmanState state{req.device, req.current};
  const std::size_t sid = state.index();

  BudgetLevel level_big = keep_level;
  BudgetLevel level_little = keep_level;
  double q_big = best_q_over_levels(sid, req.event,
                                    battery::BatterySelection::kBig,
                                    &level_big);
  double q_little = best_q_over_levels(sid, req.event,
                                       battery::BatterySelection::kLittle,
                                       &level_little);
  if (!std::isnan(q_big) && !std::isnan(q_little)) {
    ++stats_.exact;
    last_detail_.source = obs::DecisionDetail::Source::kExact;
    last_detail_.q_big = q_big;
    last_detail_.q_little = q_little;
    const bool big = q_big >= q_little;
    return {big ? battery::BatterySelection::kBig
                : battery::BatterySelection::kLittle,
            config_.learn_budget ? (big ? level_big : level_little)
                                 : req.budget};
  }

  // Similarity transfer for the missing side(s). The matched state is the
  // one the chosen side's Q came from (decided below), so remember both.
  std::int64_t matched_big = -1;
  std::int64_t matched_little = -1;
  if (std::isnan(q_big)) {
    q_big = transferred_q(sid, req.event.kind,
                          battery::BatterySelection::kBig, &matched_big,
                          &level_big);
  }
  if (std::isnan(q_little)) {
    q_little = transferred_q(sid, req.event.kind,
                             battery::BatterySelection::kLittle,
                             &matched_little, &level_little);
  }
  if (!std::isnan(q_big) && !std::isnan(q_little)) {
    ++stats_.transferred;
    const bool big = q_big >= q_little;
    last_detail_.source = obs::DecisionDetail::Source::kTransferred;
    last_detail_.matched_state = big ? matched_big : matched_little;
    last_detail_.q_big = q_big;
    last_detail_.q_little = q_little;
    return {big ? battery::BatterySelection::kBig
                : battery::BatterySelection::kLittle,
            config_.learn_budget ? (big ? level_big : level_little)
                                 : req.budget};
  }

  ++stats_.fallback;
  last_detail_.source = obs::DecisionDetail::Source::kFallback;
  last_detail_.q_big = q_big;        // whichever side resolved, for the
  last_detail_.q_little = q_little;  // trace; NaN serialises as null
  // No experience to rate a voluntary derate either: keep the level in
  // force rather than guessing.
  return {kind_prior(req.event.kind, req.event.param_bucket), req.budget};
}

}  // namespace capman::core
