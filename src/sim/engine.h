// Discrete-time simulation engine: workload trace -> device power models ->
// scheduling policy -> battery pack -> thermal network + TEC, stepped on a
// fixed clock until the pack dies (one discharge cycle). This replaces the
// paper's physical testbed (phones + multimeter + switch board).
#pragma once

#include <memory>

#include "battery/pack.h"
#include "device/phone.h"
#include "policy/policy.h"
#include "sim/metrics.h"
#include "thermal/controller.h"
#include "thermal/phone_thermal.h"
#include "workload/trace.h"

namespace capman::sim {

struct SimConfig {
  util::Seconds dt{0.05};
  util::Seconds max_duration = util::hours(400.0);
  bool enable_tec = true;
  // Net unmet demand (leaky integrator, slow forgiveness) beyond this
  // kills the phone: one voltage-sag stutter rides through on the rail
  // capacitance, repeated or sustained sag shuts the phone down.
  util::Seconds death_grace{2.5};

  // Series capture (decimated to roughly this sampling period).
  bool record_series = true;
  util::Seconds series_period{2.0};

  battery::DualPackConfig pack_config{};
  battery::Chemistry practice_chemistry = battery::Chemistry::kLCO;
  double practice_capacity_mah = 2500.0;

  thermal::PhoneThermalConfig thermal_config{};
  thermal::TecParams tec_params{};
  thermal::CoolingControllerConfig cooling_config{};
};

class SimEngine {
 public:
  explicit SimEngine(const SimConfig& config = {});

  /// Run one full discharge cycle of `policy` on `trace` with `phone`.
  SimResult run(const workload::Trace& trace, policy::BatteryPolicy& policy,
                const device::PhoneModel& phone);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

}  // namespace capman::sim
