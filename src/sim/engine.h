// Discrete-time simulation engine: workload trace -> device power models ->
// scheduling policy -> battery pack -> thermal network + TEC, stepped on a
// fixed clock until the pack dies (one discharge cycle). This replaces the
// paper's physical testbed (phones + multimeter + switch board).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "battery/pack.h"
#include "core/power_budget.h"
#include "device/phone.h"
#include "obs/telemetry.h"
#include "policy/policy.h"
#include "sim/faults.h"
#include "sim/metrics.h"
#include "thermal/controller.h"
#include "thermal/phone_thermal.h"
#include "workload/trace.h"

namespace capman::sim {

struct SimConfig {
  util::Seconds dt{0.05};  // fixed step; 50 ms resolves surge trains while
                           // keeping multi-day toggle runs tractable
  util::Seconds max_duration = util::hours(400.0);  // hard stop for runs
                                                    // that never deplete
  bool enable_tec = true;  // false: cooling plate only (Fig. 14 baseline)
  // Net unmet demand (leaky integrator, slow forgiveness) beyond this
  // kills the phone: one voltage-sag stutter rides through on the rail
  // capacitance, repeated or sustained sag shuts the phone down.
  util::Seconds death_grace{2.5};

  // Series capture (decimated to roughly this sampling period).
  bool record_series = true;
  util::Seconds series_period{2.0};

  // The big.LITTLE pack under test, and the single stock cell swapped in
  // for policies with wants_single_pack() (the paper's Practice phone).
  battery::DualPackConfig pack_config{};
  battery::Chemistry practice_chemistry = battery::Chemistry::kLCO;
  double practice_capacity_mah = 2500.0;

  // Thermal stack: RC network, Peltier element, 45 C threshold controller.
  thermal::PhoneThermalConfig thermal_config{};
  thermal::TecParams tec_params{};
  thermal::CoolingControllerConfig cooling_config{};

  // Actuator/sensor fault plan (sim/faults.h). All-zero by default: the
  // engine then runs the ideal path and produces bit-identical results to
  // a fault-free build.
  FaultPlanConfig faults{};

  // Power-budget arbiter (core/power_budget.h). Disabled by default: the
  // engine then never builds consumers or shapes demand, so runs are
  // bit-identical to the pre-arbiter engine.
  core::PowerBudgetArbiterConfig budget{};

  // Telemetry sinks (src/obs): decision-trace JSONL, Chrome-trace spans,
  // metrics JSON. All off by default; the deterministic registry snapshot
  // still lands in SimResult::metrics, and runs with everything disabled
  // are bit-identical to a telemetry-free build
  // (tests/sim/telemetry_test.cpp).
  obs::TelemetryConfig telemetry{};

  /// Human-readable configuration errors; empty means the config is valid.
  /// Checks this struct plus the nested switch-facility and fault plans.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// The testbed. Stateless between runs: every run() builds a fresh pack,
/// thermal stack and metrics pipeline from the config, so one engine can
/// race many policies on the same trace (sim::ExperimentRunner::compare).
class SimEngine {
 public:
  /// Throws std::invalid_argument listing every problem when
  /// `config.validate()` is non-empty (negative dt, non-positive
  /// death_grace, zero oscillator_hz, malformed fault plan, ...).
  explicit SimEngine(const SimConfig& config = {});

  /// Run one full discharge cycle of `policy` on `trace` with `phone`:
  /// steps the clock by dt until the pack can no longer serve the demand
  /// (sustained unmet demand beyond death_grace) or max_duration passes.
  /// Deterministic: identical inputs give identical SimResults.
  SimResult run(const workload::Trace& trace, policy::BatteryPolicy& policy,
                const device::PhoneModel& phone) const;

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  SimConfig config_;
};

}  // namespace capman::sim
