// Crash-safe checkpoint format for fleet campaigns.
//
// A week-long FleetRunner campaign must survive SIGKILL: the checkpoint
// file persists every *completed* shard's reduction state — the
// PolicyAggregate counters and quantized sums, the QuantileSketch bucket
// maps, the shard's device-range cursor and engine-step count — plus a
// header binding the file to the exact FleetConfig identity that produced
// it. Resume restores the completed shards bit-for-bit and re-runs only
// the rest, so a resumed campaign's merged result (and its --json metric
// snapshot) is byte-identical to an uninterrupted run. docs/FLEET.md
// ("Checkpoint & resume") is the operator guide; DESIGN.md §16 specifies
// the record format in full.
//
// Durability model:
//  * every write replaces the whole file through util::AtomicFile
//    (write-temp + fsync + rename), so the file on disk is always a
//    complete checkpoint from *some* point in time;
//  * every frame carries a CRC-32 (util::crc32) over its type, length
//    and payload. A torn or corrupted tail — the failure mode when the
//    rename itself races a power cut — is detected at load and rolled
//    back to the last valid frame instead of aborting the resume;
//  * the header carries a config fingerprint (checkpoint_fingerprint):
//    FleetRunner refuses to resume from a checkpoint whose identity
//    fields (device count, shard plan, seed, policies, population,
//    sketch accuracy) disagree with the live config.
//
// The format is explicitly little-endian fixed-width binary — no
// host-struct dumps — so a checkpoint written on one machine resumes on
// another.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/fleet.h"

namespace capman::sim {

/// Format version; bump on any frame-layout change. Readers refuse
/// versions they do not understand (a refused resume is a cold start,
/// never a misparse).
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// The identity header: frame 0 of every checkpoint file. A checkpoint is
/// only resumable into a FleetRunner whose fingerprint matches.
struct CheckpointHeader {
  std::uint32_t version = kCheckpointFormatVersion;
  std::uint64_t fingerprint = 0;   // checkpoint_fingerprint(config, shards)
  std::uint64_t device_count = 0;
  std::uint64_t shard_count = 0;   // resolved (auto already applied)
  std::uint64_t seed = 0;
  std::vector<PolicyKind> policies;  // FleetConfig::policies order
  double sketch_relative_error = 0.01;
};

/// One completed shard's full reduction state — everything FleetRunner
/// accumulates for a shard, in serializable form (sketches flattened via
/// obs::QuantileSketch::state()).
struct ShardCheckpoint {
  std::uint64_t shard = 0;
  std::uint64_t device_begin = 0;  // the shard's contiguous device range
  std::uint64_t device_end = 0;
  std::uint64_t engine_steps = 0;
  std::uint64_t quarantine_retries = 0;
  std::vector<PolicyAggregate> policies;  // header policy order
};

/// What CheckpointReader::load recovered. frames_discarded / bytes_
/// discarded are non-zero when a torn or corrupt tail was rolled back.
struct CheckpointLoad {
  CheckpointHeader header;
  std::vector<ShardCheckpoint> shards;  // ascending shard index
  std::size_t frames_kept = 0;          // valid frames (incl. header)
  std::size_t frames_discarded = 0;     // invalid tail frames dropped
  std::uint64_t bytes_discarded = 0;    // bytes of the dropped tail
};

/// 64-bit FNV-1a fingerprint over the result-identity surface of a fleet
/// configuration: device count, the resolved shard plan, seed, policy
/// list, sketch accuracy, health enablement and the full population
/// sampling model. Thread count is deliberately excluded — results never
/// depend on it, so a campaign may resume with a different worker count.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(const FleetConfig& config,
                                                   std::size_t resolved_shards);

/// Serializes checkpoints. Each write() atomically replaces the file with
/// header + every provided shard frame, so the on-disk state is always a
/// complete, self-consistent snapshot.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, CheckpointHeader header);

  /// Atomically rewrite the checkpoint as header + `shards` (any order;
  /// frames are written in ascending shard index). Throws
  /// std::runtime_error on I/O failure.
  void write(const std::vector<ShardCheckpoint>& shards);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  /// Size of the last committed file in bytes.
  [[nodiscard]] std::uint64_t bytes_last_write() const { return bytes_; }

 private:
  std::string path_;
  CheckpointHeader header_;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Deserializes checkpoints, tolerating torn tails (see CheckpointLoad).
class CheckpointReader {
 public:
  /// Load `path`. Returns std::nullopt when the file does not exist or
  /// contains no valid header frame (both mean "cold start"). Invalid
  /// trailing frames are dropped, never fatal; a shard frame whose policy
  /// list disagrees with the header is treated as invalid.
  [[nodiscard]] static std::optional<CheckpointLoad> load(
      const std::string& path);
};

}  // namespace capman::sim
