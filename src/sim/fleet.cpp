#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <utility>

#include "device/phone.h"
#include "obs/metrics.h"
#include "sim/checkpoint.h"
#include "util/sharding.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "workload/generators.h"

namespace capman::sim {

const char* to_string(FleetPhone phone) {
  switch (phone) {
    case FleetPhone::kNexus: return "nexus";
    case FleetPhone::kHonor: return "honor";
    case FleetPhone::kLenovo: return "lenovo";
  }
  return "?";
}

const char* to_string(FleetWorkload workload) {
  switch (workload) {
    case FleetWorkload::kGeekbench: return "geekbench";
    case FleetWorkload::kPcmark: return "pcmark";
    case FleetWorkload::kVideo: return "video";
    case FleetWorkload::kLocalVideo: return "localvideo";
    case FleetWorkload::kIdleScreenOn: return "idle";
    case FleetWorkload::kEtaStatic: return "eta";
    case FleetWorkload::kScreenToggle: return "toggle";
  }
  return "?";
}

namespace {

device::PhoneProfile profile_for(FleetPhone phone) {
  switch (phone) {
    case FleetPhone::kNexus: return device::nexus_profile();
    case FleetPhone::kHonor: return device::honor_profile();
    case FleetPhone::kLenovo: return device::lenovo_profile();
  }
  return device::nexus_profile();
}

std::unique_ptr<workload::WorkloadGenerator> make_generator(
    const PopulationSpec::WorkloadChoice& choice) {
  switch (choice.workload) {
    case FleetWorkload::kGeekbench: return workload::make_geekbench();
    case FleetWorkload::kPcmark: return workload::make_pcmark();
    case FleetWorkload::kVideo: return workload::make_video();
    case FleetWorkload::kLocalVideo: return workload::make_local_video();
    case FleetWorkload::kIdleScreenOn: return workload::make_idle_screen_on();
    case FleetWorkload::kEtaStatic:
      return workload::make_eta_static(choice.eta);
    case FleetWorkload::kScreenToggle:
      return workload::make_screen_toggle(choice.toggle_period);
  }
  return workload::make_video();
}

/// Weighted pick: walk the cumulative weights with one uniform draw.
/// validate() guarantees a positive total, so the walk always lands.
template <typename Choice>
const Choice& pick_weighted(const std::vector<Choice>& choices,
                            util::Rng& rng) {
  double total = 0.0;
  for (const auto& choice : choices) total += std::max(choice.weight, 0.0);
  double x = rng.uniform(0.0, total);
  for (const auto& choice : choices) {
    const double w = std::max(choice.weight, 0.0);
    if (x < w) return choice;
    x -= w;
  }
  return choices.back();
}

/// splitmix64 finalizer (the mixing half of the generator seeding
/// util::Rng): full-avalanche, so consecutive device ids land on
/// statistically independent seeds.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Domain-separation salts so the sampling stream, the trace/policy seed
// and the fault stream of one device never alias.
constexpr std::uint64_t kSampleSalt = 0xF1EE75A117ULL;
constexpr std::uint64_t kFaultSalt = 0xFA0175EEDULL;

/// Sketches reject negatives; fleet metrics are non-negative by
/// construction, but clamp defensively so a pathological run cannot
/// throw inside a worker thread.
double non_negative(double value) { return std::max(value, 0.0); }

void check_weighted(const char* field, std::size_t size, double max_weight,
                    double min_weight,
                    std::vector<std::string>& errors) {
  if (size == 0) {
    errors.emplace_back(std::string{field} + " must not be empty");
    return;
  }
  if (min_weight < 0.0) {
    errors.emplace_back(std::string{field} + " weights must be >= 0");
  }
  if (!(max_weight > 0.0)) {
    errors.emplace_back(std::string{field} +
                        " needs at least one positive weight");
  }
}

template <typename Choice>
void check_choices(const char* field, const std::vector<Choice>& choices,
                   std::vector<std::string>& errors) {
  double max_weight = 0.0;
  double min_weight = 0.0;
  for (const auto& choice : choices) {
    max_weight = std::max(max_weight, choice.weight);
    min_weight = std::min(min_weight, choice.weight);
  }
  check_weighted(field, choices.size(), max_weight, min_weight, errors);
}

}  // namespace

// ---------------------------------------------------------------------------
// Validation

std::vector<std::string> PopulationSpec::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  check_choices("big_chemistries", big_chemistries, errors);
  check_choices("little_chemistries", little_chemistries, errors);
  check_choices("workloads", workloads, errors);
  check_choices("phones", phones, errors);
  require(big_capacity_mah_lo > 0.0, "big_capacity_mah_lo must be > 0");
  require(big_capacity_mah_hi >= big_capacity_mah_lo,
          "big_capacity_mah_hi must be >= big_capacity_mah_lo");
  require(little_capacity_mah_lo > 0.0,
          "little_capacity_mah_lo must be > 0");
  require(little_capacity_mah_hi >= little_capacity_mah_lo,
          "little_capacity_mah_hi must be >= little_capacity_mah_lo");
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& choice = workloads[i];
    if (choice.eta < 0.0 || choice.eta > 1.0) {
      errors.push_back("workloads[" + std::to_string(i) +
                       "].eta must be in [0, 1]");
    }
    if (!(choice.toggle_period.value() > 0.0)) {
      errors.push_back("workloads[" + std::to_string(i) +
                       "].toggle_period must be > 0");
    }
  }
  require(ambient_lo.value() > -273.15,
          "ambient_lo must be above absolute zero");
  require(ambient_hi.value() >= ambient_lo.value(),
          "ambient_hi must be >= ambient_lo");
  require(trace_horizon.value() > 0.0, "trace_horizon must be > 0");
  require(fault_fraction >= 0.0 && fault_fraction <= 1.0,
          "fault_fraction must be in [0, 1]");
  for (auto& error : fault_template.validate()) {
    errors.push_back("fault_template." + error);
  }
  return errors;
}

std::vector<std::string> FleetCheckpointConfig::validate() const {
  std::vector<std::string> errors;
  if (every_shards == 0) {
    errors.emplace_back("every_shards must be > 0");
  }
  if (resume && directory.empty()) {
    errors.emplace_back("resume requires a checkpoint directory");
  }
  return errors;
}

std::vector<std::string> FleetConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(device_count > 0, "device_count must be > 0");
  if (shard_count != 0) {
    require(shard_count <= device_count,
            "shard_count must be <= device_count (0 = auto)");
    require(shard_count <= 4096, "shard_count must be <= 4096");
  }
  require(!policies.empty(), "policies must not be empty");
  bool repeated = false;
  for (std::size_t i = 0; i < policies.size() && !repeated; ++i) {
    for (std::size_t j = i + 1; j < policies.size(); ++j) {
      if (policies[i] == policies[j]) {
        repeated = true;
        break;
      }
    }
  }
  require(!repeated, "policies must not repeat a PolicyKind");
  require(sketch_relative_error > 0.0 && sketch_relative_error < 1.0,
          "sketch_relative_error must be in (0, 1)");
  require(!base.faults.enabled(),
          "base.faults must be inactive; sample fleet faults via "
          "population.fault_fraction and fault_template");
  for (auto& error : population.validate()) {
    errors.push_back("population." + error);
  }
  for (auto& error : base.validate()) {
    errors.push_back("base." + error);
  }
  for (auto& error : capman.validate()) {
    errors.push_back("capman." + error);
  }
  for (auto& error : health.validate()) {
    errors.push_back("health." + error);
  }
  require(health.alerts_path.empty(),
          "health.alerts_path must be empty for fleet runs (fleets "
          "aggregate alert counts, they do not write per-device files)");
  for (auto& error : checkpoint.validate()) {
    errors.push_back("checkpoint." + error);
  }
  if (recorder.enabled) {
    for (auto& error : recorder.validate()) {
      errors.push_back("recorder." + error);
    }
  }
  return errors;
}

// ---------------------------------------------------------------------------
// Aggregates

void PolicyAggregate::add(const SimResult& result, bool faulty) {
  ++devices;
  if (result.died_of_brownout) ++brownouts;
  if (result.truncated) ++truncated;
  switch_total += result.switch_count;
  if (faulty) ++faulty_devices;
  fault_fallbacks += result.faults.fallback_episodes;
  fault_dropped_requests += result.faults.dropped_requests;
  lifetime_us +=
      util::quantize_microseconds(util::Seconds{result.service_time_s});
  max_temp_mc +=
      util::quantize_millicelsius(util::Celsius{result.max_cpu_temp_c});
  energy_delivered_mj +=
      util::quantize_millijoules(util::Joules{result.energy_delivered_j});
  health_evaluations += result.health.evaluations;
  for (std::size_t i = 0; i < health_alerts.size(); ++i) {
    health_alerts[i] += result.health.alerts[i];
  }
  lifetime_s_sketch.observe(non_negative(result.service_time_s));
  max_temp_c_sketch.observe(non_negative(result.max_cpu_temp_c));
  switches_sketch.observe(static_cast<double>(result.switch_count));
}

void PolicyAggregate::merge(const PolicyAggregate& other) {
  devices += other.devices;
  brownouts += other.brownouts;
  truncated += other.truncated;
  switch_total += other.switch_total;
  faulty_devices += other.faulty_devices;
  fault_fallbacks += other.fault_fallbacks;
  fault_dropped_requests += other.fault_dropped_requests;
  quarantined += other.quarantined;
  lifetime_us += other.lifetime_us;
  max_temp_mc += other.max_temp_mc;
  energy_delivered_mj += other.energy_delivered_mj;
  health_evaluations += other.health_evaluations;
  for (std::size_t i = 0; i < health_alerts.size(); ++i) {
    health_alerts[i] += other.health_alerts[i];
  }
  lifetime_s_sketch.merge(other.lifetime_s_sketch);
  max_temp_c_sketch.merge(other.max_temp_c_sketch);
  switches_sketch.merge(other.switches_sketch);
}

std::uint64_t PolicyAggregate::health_alert_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : health_alerts) total += n;
  return total;
}

double PolicyAggregate::mean_lifetime_s() const {
  if (devices == 0) return 0.0;
  // capman-lint: allow(raw-unit, mean reporting scales the exact fold)
  return static_cast<double>(lifetime_us.raw()) / 1e6 /
         static_cast<double>(devices);
}

double PolicyAggregate::mean_max_temp_c() const {
  if (devices == 0) return 0.0;
  // capman-lint: allow(raw-unit, mean reporting scales the exact fold)
  return static_cast<double>(max_temp_mc.raw()) / 1e3 /
         static_cast<double>(devices);
}

double PolicyAggregate::mean_energy_j() const {
  if (devices == 0) return 0.0;
  // capman-lint: allow(raw-unit, mean reporting scales the exact fold)
  return static_cast<double>(energy_delivered_mj.raw()) / 1e3 /
         static_cast<double>(devices);
}

double PolicyAggregate::mean_switches() const {
  return devices > 0 ? static_cast<double>(switch_total) /
                           static_cast<double>(devices)
                     : 0.0;
}

double PolicyAggregate::brownout_fraction() const {
  return devices > 0 ? static_cast<double>(brownouts) /
                           static_cast<double>(devices)
                     : 0.0;
}

const PolicyAggregate* FleetResult::find(PolicyKind kind) const {
  for (const auto& aggregate : policies) {
    if (aggregate.kind == kind) return &aggregate;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// FleetRunner

FleetRunner::FleetRunner(FleetConfig config) : config_(std::move(config)) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid FleetConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
  shards_ = util::resolve_shard_count(config_.shard_count,
                                      config_.device_count);
  threads_ = util::resolve_thread_count(config_.threads);
  crash_after_ = config_.crash_after_shards;
  if (const char* env = std::getenv("CAPMAN_CRASH_AFTER_SHARDS")) {
    crash_after_ = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
}

std::uint64_t FleetRunner::device_seed(std::uint64_t fleet_seed,
                                       std::uint64_t device_id) {
  return mix64(fleet_seed ^ mix64(device_id));
}

DeviceSpec FleetRunner::sample_device(const PopulationSpec& spec,
                                      std::uint64_t fleet_seed,
                                      std::uint64_t device_id) {
  DeviceSpec device;
  device.device_id = device_id;
  device.seed = device_seed(fleet_seed, device_id);
  device.fault_seed = mix64(device.seed ^ kFaultSalt);
  // One dedicated sampling stream per device, domain-separated from the
  // trace/policy seed. Draw order is part of the determinism contract:
  // phone, big chemistry, big capacity, little chemistry, little
  // capacity, workload, ambient, fault coin.
  util::Rng rng{mix64(device.seed ^ kSampleSalt)};
  device.phone = pick_weighted(spec.phones, rng).phone;
  device.big_chemistry = pick_weighted(spec.big_chemistries, rng).chemistry;
  device.big_capacity_mah =
      rng.uniform(spec.big_capacity_mah_lo, spec.big_capacity_mah_hi);
  device.little_chemistry =
      pick_weighted(spec.little_chemistries, rng).chemistry;
  device.little_capacity_mah =
      rng.uniform(spec.little_capacity_mah_lo, spec.little_capacity_mah_hi);
  device.workload = pick_weighted(spec.workloads, rng);
  device.ambient =
      util::Celsius{rng.uniform(spec.ambient_lo.value(),
                                spec.ambient_hi.value())};
  device.faulty = spec.fault_fraction > 0.0 && rng.chance(spec.fault_fraction);
  return device;
}

namespace {

/// Worker-private accumulation for one shard; merged in shard order.
struct ShardState {
  std::vector<PolicyAggregate> policies;
  std::uint64_t engine_steps = 0;
  std::uint64_t quarantine_retries = 0;
  // Quarantined (device id, reason) pairs, replayed into the fleet
  // flight recorder on the calling thread after the parallel phase.
  std::vector<std::pair<std::uint64_t, std::string>> quarantine_log;
};

/// Snapshot one completed shard's reduction state for serialization.
ShardCheckpoint to_checkpoint(std::size_t shard, const util::ShardRange& range,
                              const ShardState& state) {
  ShardCheckpoint out;
  out.shard = shard;
  out.device_begin = range.begin;
  out.device_end = range.end;
  out.engine_steps = state.engine_steps;
  out.quarantine_retries = state.quarantine_retries;
  out.policies = state.policies;
  return out;
}

/// Completion bookkeeping shared by every worker: which shards are done,
/// when to write a checkpoint, and when to inject the test crash. One
/// mutex serializes all of it — completion is O(shards), not O(devices),
/// so contention is irrelevant next to the simulation work.
class ShardSupervisor {
 public:
  ShardSupervisor(std::size_t shards, std::size_t every,
                  std::size_t crash_after, CheckpointWriter* writer)
      : every_(std::max<std::size_t>(every, 1)),
        crash_after_(crash_after),
        writer_(writer),
        done_(shards, 0) {}

  /// Pre-parallel (main thread): mark a shard restored from checkpoint.
  void mark_resumed(std::size_t shard) {
    util::MutexLock lock{mutex_};
    done_[shard] = 1;
  }

  /// Worker-side: `shard`'s state is final. The mutex acquire here pairs
  /// with the release of the completing worker, so write_locked reads
  /// every done shard's state with a happens-before edge. May SIGKILL
  /// the process (crash injection; checkpoint cadence runs first so the
  /// injected crash always leaves a resumable file behind).
  void complete(std::size_t shard, const std::vector<ShardState>& states,
                const util::ShardPlan& plan) {
    util::MutexLock lock{mutex_};
    done_[shard] = 1;
    ++completed_;
    ++since_write_;
    if (writer_ != nullptr && since_write_ >= every_) {
      write_locked(states, plan);
      since_write_ = 0;
    }
    if (crash_after_ != 0 && completed_ >= crash_after_) {
      std::raise(SIGKILL);
    }
  }

  /// Post-parallel (main thread): the final whole-fleet checkpoint.
  void finalize(const std::vector<ShardState>& states,
                const util::ShardPlan& plan) {
    util::MutexLock lock{mutex_};
    if (writer_ != nullptr) {
      write_locked(states, plan);
    }
  }

  /// Shards persisted by each checkpoint write, in write order (flight-
  /// recorder replay). Post-parallel only.
  [[nodiscard]] std::vector<std::size_t> write_log() {
    util::MutexLock lock{mutex_};
    return write_log_;
  }

 private:
  void write_locked(const std::vector<ShardState>& states,
                    const util::ShardPlan& plan) CAPMAN_REQUIRES(mutex_) {
    std::vector<ShardCheckpoint> shards;
    for (std::size_t shard = 0; shard < done_.size(); ++shard) {
      if (done_[shard] != 0) {
        shards.push_back(to_checkpoint(shard, plan.range(shard),
                                       states[shard]));
      }
    }
    writer_->write(shards);
    write_log_.push_back(shards.size());
  }

  const std::size_t every_;
  const std::size_t crash_after_;
  CheckpointWriter* const writer_;  // nullptr = checkpointing disabled
  util::Mutex mutex_;
  std::vector<char> done_ CAPMAN_GUARDED_BY(mutex_);
  std::size_t completed_ CAPMAN_GUARDED_BY(mutex_) = 0;  // this process
  std::size_t since_write_ CAPMAN_GUARDED_BY(mutex_) = 0;
  std::vector<std::size_t> write_log_ CAPMAN_GUARDED_BY(mutex_);
};

PolicyAggregate make_aggregate(PolicyKind kind, double relative_error) {
  PolicyAggregate aggregate;
  aggregate.kind = kind;
  aggregate.lifetime_s_sketch = obs::QuantileSketch{relative_error};
  aggregate.max_temp_c_sketch = obs::QuantileSketch{relative_error};
  aggregate.switches_sketch = obs::QuantileSketch{relative_error};
  return aggregate;
}

std::string shard_instrument(std::size_t shard, const char* suffix) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "fleet/shard/%04zu/%s", shard,
                suffix);
  return buffer;
}

void publish_sketch(obs::MetricsRegistry& registry, const std::string& prefix,
                    const obs::QuantileSketch& sketch) {
  registry.gauge(prefix + "/p50").set(sketch.quantile(0.50));
  registry.gauge(prefix + "/p90").set(sketch.quantile(0.90));
  registry.gauge(prefix + "/p99").set(sketch.quantile(0.99));
  registry.gauge(prefix + "/min").set(sketch.min());
  registry.gauge(prefix + "/max").set(sketch.max());
}

/// Serialise the merged aggregates into the fleet/* instruments. Runs on
/// the calling thread after the parallel phase, so registration order —
/// and therefore the snapshot — is deterministic.
void publish_fleet(obs::MetricsRegistry& registry, const FleetResult& result) {
  registry.counter("fleet/devices").add(result.device_count);
  registry.counter("fleet/shards").add(result.shard_count);
  registry.counter("fleet/steps").add(result.total_engine_steps);
  for (const auto& aggregate : result.policies) {
    const std::string prefix = std::string{"fleet/"} + to_string(aggregate.kind);
    registry.counter(prefix + "/devices").add(aggregate.devices);
    registry.counter(prefix + "/brownouts").add(aggregate.brownouts);
    registry.counter(prefix + "/truncated").add(aggregate.truncated);
    registry.counter(prefix + "/switches").add(aggregate.switch_total);
    registry.counter(prefix + "/faulty_devices").add(aggregate.faulty_devices);
    registry.counter(prefix + "/fault_fallbacks")
        .add(aggregate.fault_fallbacks);
    registry.counter(prefix + "/fault_dropped_requests")
        .add(aggregate.fault_dropped_requests);
    registry.counter(prefix + "/quarantined").add(aggregate.quarantined);
    registry.gauge(prefix + "/lifetime_s/mean").set(aggregate.mean_lifetime_s());
    publish_sketch(registry, prefix + "/lifetime_s",
                   aggregate.lifetime_s_sketch);
    registry.gauge(prefix + "/max_temp_c/mean")
        .set(aggregate.mean_max_temp_c());
    publish_sketch(registry, prefix + "/max_temp_c",
                   aggregate.max_temp_c_sketch);
    registry.gauge(prefix + "/switches/mean").set(aggregate.mean_switches());
    publish_sketch(registry, prefix + "/switches", aggregate.switches_sketch);
    registry.gauge(prefix + "/energy_j/mean").set(aggregate.mean_energy_j());
    registry.gauge(prefix + "/brownout_fraction")
        .set(aggregate.brownout_fraction());
    // Health counters appear only when the fleet ran with monitoring, so
    // default-config snapshots stay bit-identical to pre-health builds.
    if (result.health_enabled) {
      registry.counter(prefix + "/health_evaluations")
          .add(aggregate.health_evaluations);
      registry.counter(prefix + "/alerts_total")
          .add(aggregate.health_alert_total());
      for (std::size_t i = 0; i < aggregate.health_alerts.size(); ++i) {
        registry
            .counter(prefix + "/alerts/" +
                     obs::to_string(static_cast<obs::HealthRule>(i)))
            .add(aggregate.health_alerts[i]);
      }
    }
  }
  for (const auto& shard : result.shards) {
    registry.counter(shard_instrument(shard.shard, "devices"))
        .add(shard.device_end - shard.device_begin);
    registry.counter(shard_instrument(shard.shard, "steps"))
        .add(shard.engine_steps);
    // Quarantine counters appear only where the supervisor actually
    // skipped devices, so healthy fleets keep their lean shard rows.
    // Deterministic: skips are a pure function of the config (the poison
    // hook) or of genuinely broken simulations.
    if (shard.quarantined_devices > 0) {
      registry.counter(shard_instrument(shard.shard, "quarantined"))
          .add(shard.quarantined_devices);
    }
    if (shard.quarantine_retries > 0) {
      registry.counter(shard_instrument(shard.shard, "quarantine_retries"))
          .add(shard.quarantine_retries);
    }
  }
  // Only resume-invariant checkpoint facts may land in the snapshot: a
  // resumed run must stay byte-identical to an uninterrupted one (the
  // crash-resume gate cmp's the two --json outputs). Operational numbers
  // (writes, restored shards) live in FleetCheckpointStats instead.
  if (result.checkpoint.enabled) {
    registry.counter("checkpoint/enabled").add(1);
    registry.counter("checkpoint/every_shards")
        .add(result.checkpoint.every_shards);
  }
}

}  // namespace

FleetResult FleetRunner::run() const {
  const util::ShardPlan plan{config_.device_count, shards_};

  std::vector<ShardState> states(shards_);
  for (auto& state : states) {
    state.policies.reserve(config_.policies.size());
    for (PolicyKind kind : config_.policies) {
      state.policies.push_back(
          make_aggregate(kind, config_.sketch_relative_error));
    }
  }

  // Durability setup. The fingerprint binds any checkpoint to this exact
  // result identity; the writer (when a directory is configured) rewrites
  // <directory>/fleet.ckpt atomically on every cadence tick.
  FleetCheckpointStats ckstats;
  const bool checkpointing = !config_.checkpoint.directory.empty();
  ckstats.enabled = checkpointing;
  ckstats.every_shards = config_.checkpoint.every_shards;
  const std::uint64_t fingerprint = checkpoint_fingerprint(config_, shards_);
  std::optional<CheckpointWriter> writer;
  std::string checkpoint_path;
  if (checkpointing) {
    checkpoint_path = config_.checkpoint.directory + "/fleet.ckpt";
    CheckpointHeader header;
    header.fingerprint = fingerprint;
    header.device_count = config_.device_count;
    header.shard_count = shards_;
    header.seed = config_.seed;
    header.policies = config_.policies;
    header.sketch_relative_error = config_.sketch_relative_error;
    writer.emplace(checkpoint_path, header);
  }

  // Resume: restore every completed shard bit-for-bit and skip it in the
  // parallel phase. A missing or headerless file is a cold start; a
  // fingerprint mismatch is a refusal — silently resuming someone else's
  // campaign would corrupt both.
  std::vector<char> resumed(shards_, 0);
  if (checkpointing && config_.checkpoint.resume) {
    if (auto load = CheckpointReader::load(checkpoint_path)) {
      if (load->header.fingerprint != fingerprint) {
        throw std::runtime_error(
            "checkpoint '" + checkpoint_path +
            "' was written by a different fleet configuration "
            "(fingerprint mismatch); refusing to resume");
      }
      for (auto& shard : load->shards) {
        const auto index = static_cast<std::size_t>(shard.shard);
        const util::ShardRange range = plan.range(index);
        // The fingerprint pins the shard plan, so ranges always match; a
        // frame that still disagrees is treated as invalid, not fatal.
        if (shard.device_begin != range.begin ||
            shard.device_end != range.end) {
          continue;
        }
        states[index].policies = std::move(shard.policies);
        states[index].engine_steps = shard.engine_steps;
        states[index].quarantine_retries = shard.quarantine_retries;
        resumed[index] = 1;
        ++ckstats.resumed_shards;
      }
      ckstats.resumed = ckstats.resumed_shards > 0;
      ckstats.frames_discarded = load->frames_discarded;
    }
  }

  ShardSupervisor supervisor{shards_, config_.checkpoint.every_shards,
                             crash_after_, writer ? &*writer : nullptr};
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    if (resumed[shard] != 0) supervisor.mark_resumed(shard);
  }

  // The per-device loop. Every input below is a pure function of
  // (config, device id); workers touch only the shard states they own.
  auto run_device = [this](std::uint64_t device_id, bool first_attempt) {
    const DeviceSpec spec =
        sample_device(config_.population, config_.seed, device_id);

    // Supervision test hook: poisoned devices throw here (transient
    // poison only on the first attempt, so the bounded retry succeeds).
    if (!config_.poison_devices.empty() &&
        std::find(config_.poison_devices.begin(),
                  config_.poison_devices.end(),
                  device_id) != config_.poison_devices.end() &&
        (first_attempt || !config_.poison_transient)) {
      throw std::runtime_error("poisoned device " +
                               std::to_string(device_id));
    }

    SimConfig device_config = config_.base;
    // Fleets aggregate, they do not trace: per-device series and file
    // sinks would be O(devices) memory and I/O, so both are forced off.
    // Health monitoring survives the reset (alert counts reduce to O(1)
    // integers per shard), minus any file sink.
    device_config.record_series = false;
    device_config.telemetry = obs::TelemetryConfig{};
    device_config.telemetry.health = config_.health;
    device_config.telemetry.health.alerts_path.clear();
    device_config.pack_config.big_chemistry = spec.big_chemistry;
    device_config.pack_config.big_capacity_mah = spec.big_capacity_mah;
    device_config.pack_config.little_chemistry = spec.little_chemistry;
    device_config.pack_config.little_capacity_mah = spec.little_capacity_mah;
    // The Practice phone carries the same total capacity in one stock
    // cell, so the single-pack baseline stays comparable per device.
    device_config.practice_capacity_mah =
        spec.big_capacity_mah + spec.little_capacity_mah;
    device_config.thermal_config.ambient = spec.ambient;
    device_config.faults = FaultPlanConfig{};
    if (spec.faulty) {
      device_config.faults = config_.population.fault_template;
      device_config.faults.seed = spec.fault_seed;
    }

    device::PhoneModel phone{profile_for(spec.phone)};
    const workload::Trace trace =
        make_generator(spec.workload)
            ->generate(config_.population.trace_horizon, spec.seed);

    const ExperimentRunner runner{
        std::move(phone),
        {device_config, spec.seed, std::nullopt, config_.capman}};
    std::vector<SimResult> results;
    results.reserve(config_.policies.size());
    for (const PolicyKind kind : config_.policies) {
      results.push_back(runner.run(trace, kind));
    }
    return std::make_pair(spec.faulty, std::move(results));
  };

  // Record one failed attempt; returns true when the device should be
  // retried, false once it is quarantined.
  auto note_failure = [this](ShardState& state, std::uint64_t device_id,
                             std::size_t attempt, const char* what) {
    if (attempt < config_.quarantine_retries) {
      ++state.quarantine_retries;
      return true;
    }
    for (auto& aggregate : state.policies) ++aggregate.quarantined;
    state.quarantine_log.emplace_back(device_id, std::string{what});
    return false;
  };

  // The supervision boundary: nothing is folded into the shard state
  // until every policy of the device succeeded, so a retried device is
  // never half-counted. A device that keeps throwing is quarantined —
  // skipped and counted — instead of killing the campaign.
  auto run_supervised = [&](std::uint64_t device_id, ShardState& state) {
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        const auto [faulty, results] = run_device(device_id, attempt == 0);
        for (std::size_t i = 0; i < results.size(); ++i) {
          state.policies[i].add(results[i], faulty);
          state.engine_steps += results[i].metrics.counter_or("engine/steps");
        }
        return;
      } catch (const std::exception& error) {
        if (!note_failure(state, device_id, attempt, error.what())) return;
      } catch (...) {
        if (!note_failure(state, device_id, attempt, "unknown exception")) {
          return;
        }
      }
    }
  };

  util::ThreadPool pool{threads_};
  pool.parallel_for(shards_, [&](std::size_t begin, std::size_t end,
                                 std::size_t /*worker*/) {
    for (std::size_t shard = begin; shard < end; ++shard) {
      if (resumed[shard] != 0) continue;  // restored from checkpoint
      const util::ShardRange range = plan.range(shard);
      for (std::size_t device = range.begin; device < range.end; ++device) {
        run_supervised(device, states[shard]);
      }
      supervisor.complete(shard, states, plan);
    }
  });

  // One final whole-fleet checkpoint: resuming a finished campaign is a
  // no-op that reproduces the same result.
  supervisor.finalize(states, plan);
  if (writer) {
    ckstats.writes = writer->writes();
    ckstats.bytes_last_write = writer->bytes_last_write();
  }

  FleetResult result;
  result.device_count = config_.device_count;
  result.shard_count = shards_;
  result.threads = threads_;
  result.seed = config_.seed;
  result.health_enabled = config_.health.enabled;
  result.policies.reserve(config_.policies.size());
  for (PolicyKind kind : config_.policies) {
    result.policies.push_back(
        make_aggregate(kind, config_.sketch_relative_error));
  }
  result.shards.reserve(shards_);
  // Left-fold in shard-index order: with contiguous shard ranges this is
  // exactly the device order 0..N-1, the anchor of the cross-shard-count
  // bit-identity contract.
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    const util::ShardRange range = plan.range(shard);
    for (std::size_t i = 0; i < result.policies.size(); ++i) {
      result.policies[i].merge(states[shard].policies[i]);
    }
    // All policies of a quarantined device count it once, so the first
    // policy's counter is the shard's device-level skip count.
    const std::uint64_t shard_quarantined =
        states[shard].policies.front().quarantined;
    result.shards.push_back({shard, range.begin, range.end,
                             states[shard].engine_steps, shard_quarantined,
                             states[shard].quarantine_retries});
    result.total_engine_steps += states[shard].engine_steps;
    result.quarantined_devices += shard_quarantined;
    result.quarantine_retries += states[shard].quarantine_retries;
  }
  result.checkpoint = ckstats;

  obs::MetricsRegistry registry;
  publish_fleet(registry, result);
  result.metrics = registry.snapshot();

  // Fleet-operations flight recorder: replayed here, on the calling
  // thread, in deterministic order (load, quarantines in shard order,
  // checkpoint writes in write order, final). The logical clock t_s
  // counts events — fleet operations have no single simulation time.
  if (config_.recorder.enabled) {
    obs::FlightRecorder recorder{config_.recorder};
    double t = 0.0;
    if (ckstats.resumed) {
      recorder.record(t++, obs::FlightEventKind::kCheckpoint, "load",
                      "path=" + checkpoint_path,
                      static_cast<double>(ckstats.resumed_shards));
    }
    for (std::size_t shard = 0; shard < shards_; ++shard) {
      for (const auto& [device_id, reason] : states[shard].quarantine_log) {
        recorder.record(t++, obs::FlightEventKind::kEngine, "quarantine",
                        "shard=" + std::to_string(shard) +
                            " reason=" + reason,
                        static_cast<double>(device_id));
      }
    }
    for (const std::size_t persisted : supervisor.write_log()) {
      recorder.record(t++, obs::FlightEventKind::kCheckpoint, "write",
                      "path=" + checkpoint_path,
                      static_cast<double>(persisted));
    }
    if (writer) {
      recorder.record(t++, obs::FlightEventKind::kCheckpoint, "final",
                      "path=" + checkpoint_path,
                      static_cast<double>(shards_));
    }
    if (config_.recorder.dump_at_end || result.quarantined_devices > 0) {
      recorder.trigger(t, "fleet-end");
    }
  }
  return result;
}

}  // namespace capman::sim
