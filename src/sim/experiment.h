// Experiment harness helpers shared by benches, examples and integration
// tests: construct the paper's five policies, run a workload under each,
// and compute the improvement ratios the paper reports.
#pragma once

#include <memory>
#include <vector>

#include "policy/policy.h"
#include "sim/engine.h"
#include "workload/generators.h"

namespace capman::sim {

enum class PolicyKind { kOracle, kCapman, kDual, kHeuristic, kPractice };

/// Paper order: Oracle (ground truth) first, then CAPMAN, then baselines.
const std::vector<PolicyKind>& all_policy_kinds();

std::unique_ptr<policy::BatteryPolicy> make_policy(PolicyKind kind,
                                                   std::uint64_t seed = 42);

const char* to_string(PolicyKind kind);

/// Run `trace` under every policy; results in all_policy_kinds() order.
std::vector<SimResult> run_policy_comparison(const workload::Trace& trace,
                                             const device::PhoneModel& phone,
                                             const SimConfig& config,
                                             std::uint64_t seed = 42);

/// Run `cycles` consecutive discharge cycles of the same workload with ONE
/// policy instance (a fresh, fully charged pack each cycle - see
/// battery::Charger for explicit charge modeling). Learning policies
/// (CAPMAN) carry their model across cycles, so later cycles start with a
/// warm MDP - the multi-cycle learning effect.
std::vector<SimResult> run_multi_cycle(const workload::Trace& trace,
                                       const device::PhoneModel& phone,
                                       const SimConfig& config,
                                       PolicyKind kind, std::size_t cycles,
                                       std::uint64_t seed = 42);

/// Percentage improvement of a over b: 100 * (a - b) / b.
double improvement_pct(double a, double b);

/// Find a result by policy name (nullptr if absent).
const SimResult* find_result(const std::vector<SimResult>& results,
                             const std::string& policy_name);

}  // namespace capman::sim
