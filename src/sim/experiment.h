// Experiment harness shared by benches, examples and integration tests.
//
// ExperimentRunner is the front door: it owns the simulation configuration,
// the phone model, an explicit seed and an optional fault plan, and runs
// single policies, the paper's five-way comparison, or multi-cycle learning
// runs. All call sites construct an ExperimentRunner (the pre-PR-2 free
// functions are gone); sim::FleetRunner scales the same front door to whole
// device populations.
//
// Policy display names ("Oracle", "CAPMAN", "Dual", "Heuristic",
// "Practice") are a stable API: tables, CSV headers and find() lookups key
// on them, and tests pin each value. Lookups by name are case-insensitive.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/config.h"
#include "device/phone.h"
#include "policy/policy.h"
#include "sim/engine.h"
#include "workload/generators.h"

namespace capman::sim {

enum class PolicyKind { kOracle, kCapman, kDual, kHeuristic, kPractice };

/// Paper order: Oracle (ground truth) first, then CAPMAN, then baselines.
const std::vector<PolicyKind>& all_policy_kinds();

/// Stable display name ("Oracle", "CAPMAN", "Dual", "Heuristic",
/// "Practice") — see the header comment; tests pin every value.
const char* to_string(PolicyKind kind);

/// Results of one five-way comparison, keyed by PolicyKind.
class ComparisonResult {
 public:
  struct Entry {
    PolicyKind kind;
    SimResult result;
  };

  /// Result for `kind`; throws std::out_of_range when absent.
  [[nodiscard]] const SimResult& at(PolicyKind kind) const;
  /// Result for `kind`, nullptr when absent.
  [[nodiscard]] const SimResult* find(PolicyKind kind) const;
  /// Result by display name, matched case-insensitively ("capman" works).
  [[nodiscard]] const SimResult* find(std::string_view policy_name) const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Bare results in entry order (the legacy vector<SimResult> shape).
  [[nodiscard]] std::vector<SimResult> to_vector() const;

  void add(PolicyKind kind, SimResult result);

 private:
  std::vector<Entry> entries_;
};

/// Everything an ExperimentRunner holds besides the phone model.
struct RunnerOptions {
  SimConfig config{};
  std::uint64_t seed = 42;
  /// When set, overrides config.faults — the convenient way to attach a
  /// fault plan to an otherwise default config.
  std::optional<FaultPlanConfig> faults;
  /// Learning configuration for the CAPMAN policies this runner builds
  /// (similarity thread count, exploration schedule, ...). Defaults match
  /// the paper's setup.
  core::CapmanConfig capman{};
};

/// The redesigned experiment front door (see header comment). One runner
/// pins down phone + config + seed + fault plan; every run*() call builds
/// fresh policy and engine state from them, so results are reproducible
/// and independent.
class ExperimentRunner {
 public:
  /// Validates the merged config via SimEngine construction; throws
  /// std::invalid_argument on malformed configs.
  explicit ExperimentRunner(device::PhoneModel phone,
                            RunnerOptions options = {});

  // Non-copyable AND non-movable: the runner is the stable owner of the
  // engine (and thereby the validated config) for a whole experiment;
  // every call site constructs it in place. Locked in by
  // tests/util/type_traits_test.
  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;
  ExperimentRunner(ExperimentRunner&&) = delete;
  ExperimentRunner& operator=(ExperimentRunner&&) = delete;

  /// Fresh policy instance of `kind` wired to this runner's seed; CAPMAN
  /// additionally gets its DegradationGuard armed when the fault plan can
  /// actually fire (graceful degradation is pointless — and would perturb
  /// fault-free runs — otherwise).
  [[nodiscard]] std::unique_ptr<policy::BatteryPolicy> build_policy(
      PolicyKind kind) const;

  /// One discharge cycle of a fresh `kind` policy on `trace`.
  SimResult run(const workload::Trace& trace, PolicyKind kind) const;
  /// One discharge cycle of a caller-owned policy (custom policies).
  SimResult run(const workload::Trace& trace,
                policy::BatteryPolicy& policy) const;

  /// The paper's five-way comparison on `trace`.
  [[nodiscard]] ComparisonResult compare(const workload::Trace& trace) const;

  /// `cycles` consecutive discharge cycles with ONE policy instance (fresh
  /// fully-charged pack each cycle); learning policies carry their model
  /// across cycles — the multi-cycle learning effect.
  [[nodiscard]] std::vector<SimResult> run_cycles(const workload::Trace& trace,
                                                  PolicyKind kind,
                                                  std::size_t cycles) const;

  [[nodiscard]] const SimConfig& config() const { return engine_.config(); }
  [[nodiscard]] const device::PhoneModel& phone() const { return phone_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  device::PhoneModel phone_;
  std::uint64_t seed_;
  core::CapmanConfig capman_;
  SimEngine engine_;
};

/// Percentage improvement of a over b: 100 * (a - b) / b.
double improvement_pct(double a, double b);

/// Find a result by policy name, matched case-insensitively (nullptr if
/// absent). Display names are stable API — see the header comment.
const SimResult* find_result(const std::vector<SimResult>& results,
                             std::string_view policy_name);

}  // namespace capman::sim
