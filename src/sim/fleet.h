// Fleet-scale simulation: one process, a population of heterogeneous
// simulated devices.
//
// FleetRunner promotes the per-device ExperimentRunner to population
// scale: it samples `device_count` device instances deterministically
// from a seeded PopulationSpec (battery chemistries and capacities,
// workload mixes, phone profiles, ambient temperatures, an optional fault
// plan for a fraction of the fleet), partitions them into fixed
// contiguous shards (util::ShardPlan), batches the shards across a
// util::ThreadPool, and reduces every device's discharge cycle into
// per-shard aggregates — counters, quantized sums and
// obs::QuantileSketch percentiles — instead of per-device traces.
//
// Determinism contract (tests/sim/fleet_test.cpp pins all of it):
//  * every device is sampled from a seed derived only from
//    (FleetConfig::seed, device_id) — never from thread or shard layout;
//  * the device → shard assignment is the fixed contiguous ShardPlan
//    formula, so shard contents depend only on (device_count,
//    shard_count);
//  * workers write only the shard states they own; shard aggregates are
//    merged on the calling thread in shard-index order;
//  * aggregate sums are quantized to fixed integer resolution (µs, m°C,
//    mJ) and sketch merges are integer bucket additions, so the merged
//    result is bit-identical across thread counts AND shard counts.
//
// Memory stays flat per device: device state (engine, pack, trace) is
// transient inside the shard loop, and each shard keeps O(sketch buckets)
// of aggregate state. Per-device series capture and telemetry file sinks
// are force-disabled (see FleetRunner::run). Operator guide:
// docs/FLEET.md; scaling study: bench/bench_fleet_scaling.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <array>

#include "battery/chemistry.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/sketch.h"
#include "sim/experiment.h"
#include "util/units.h"

namespace capman::sim {

/// Phone profile choices for population sampling (device/phone.h).
enum class FleetPhone { kNexus, kHonor, kLenovo };
const char* to_string(FleetPhone phone);

/// Workload-generator choices for population sampling (the paper suite
/// plus the motivation workloads; workload/generators.h).
enum class FleetWorkload {
  kGeekbench,
  kPcmark,
  kVideo,
  kLocalVideo,
  kIdleScreenOn,
  kEtaStatic,
  kScreenToggle,
};
const char* to_string(FleetWorkload workload);

/// The sampling model one fleet draws its devices from. Every weighted
/// choice and every range below is sampled per device from the device's
/// own seed (FleetRunner::device_seed), so a device's identity is a pure
/// function of (fleet seed, device id).
struct PopulationSpec {
  struct ChemistryChoice {
    battery::Chemistry chemistry = battery::Chemistry::kNCA;
    double weight = 1.0;
  };
  struct WorkloadChoice {
    FleetWorkload workload = FleetWorkload::kVideo;
    double weight = 1.0;
    // Extra knobs for the parameterized generators; ignored by the rest.
    double eta = 0.5;                       // kEtaStatic mix fraction
    util::Seconds toggle_period{60.0};      // kScreenToggle period
  };
  struct PhoneChoice {
    FleetPhone phone = FleetPhone::kNexus;
    double weight = 1.0;
  };

  // Cell chemistry and labeled capacity of each pack side. Defaults match
  // the paper's prototype neighborhood with mild heterogeneity.
  std::vector<ChemistryChoice> big_chemistries{
      {battery::Chemistry::kNCA, 3.0}, {battery::Chemistry::kNMC, 1.0}};
  std::vector<ChemistryChoice> little_chemistries{
      {battery::Chemistry::kLMO, 3.0}, {battery::Chemistry::kLTO, 1.0}};
  double big_capacity_mah_lo = 1400.0;
  double big_capacity_mah_hi = 2000.0;
  double little_capacity_mah_lo = 600.0;
  double little_capacity_mah_hi = 1000.0;

  // What each device runs: a weighted workload mix, a phone profile and
  // an ambient temperature band. The generated trace spans trace_horizon
  // (the engine loops it until the pack dies or base.max_duration hits).
  std::vector<WorkloadChoice> workloads{
      {FleetWorkload::kVideo, 2.0},
      {FleetWorkload::kPcmark, 1.0},
      {FleetWorkload::kEtaStatic, 1.0, 0.5}};
  std::vector<PhoneChoice> phones{{FleetPhone::kNexus, 2.0},
                                  {FleetPhone::kHonor, 1.0},
                                  {FleetPhone::kLenovo, 1.0}};
  util::Celsius ambient_lo{22.0};
  util::Celsius ambient_hi{32.0};
  util::Seconds trace_horizon{600.0};

  // Fault plan for a fraction of the fleet: each device independently
  // becomes faulty with probability fault_fraction and then runs
  // fault_template under a device-derived fault seed (the template's own
  // seed field is overridden).
  double fault_fraction = 0.0;
  FaultPlanConfig fault_template{};

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by FleetConfig::validate() under "population.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Crash-safe durability knobs (sim/checkpoint.h). Disabled unless a
/// directory is set; the checkpoint file is `<directory>/fleet.ckpt`,
/// rewritten atomically (util::AtomicFile) every `every_shards` completed
/// shards and once more after the run. `resume` restores completed shards
/// from an existing file — refusing one whose config fingerprint
/// disagrees — and re-runs only the rest; a missing or headerless file is
/// a cold start, never an error.
struct FleetCheckpointConfig {
  std::string directory;          // empty = checkpointing disabled
  std::size_t every_shards = 8;   // write cadence, in completed shards
  bool resume = false;            // restore from an existing checkpoint

  /// Human-readable configuration errors; empty means valid. Aggregated
  /// by FleetConfig::validate() under "checkpoint.".
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Everything a FleetRunner needs. The nested base SimConfig supplies the
/// per-device engine parameters (dt, death grace, thermal stack, ...);
/// the population spec supplies what varies per device.
struct FleetConfig {
  std::size_t device_count = 1000;
  // Fixed device → shard assignment; 0 = auto
  // (util::resolve_shard_count: min(device_count, 64)). Results are
  // bit-identical across shard counts; the knob only trades scheduling
  // granularity against per-shard telemetry volume.
  std::size_t shard_count = 0;
  // Worker threads batching the shards; 0 = auto (hardware concurrency).
  // Never affects results, only wall clock.
  std::size_t threads = 0;
  std::uint64_t seed = 42;

  // Policies raced on every device (each device runs one discharge cycle
  // per kind on its own trace). CAPMAN is legal but costs a per-device
  // learning loop; the cheap baselines are the fleet-scale default.
  std::vector<PolicyKind> policies{PolicyKind::kDual, PolicyKind::kHeuristic};

  PopulationSpec population{};
  SimConfig base{};            // per-device engine parameters
  core::CapmanConfig capman{}; // learning knobs for PolicyKind::kCapman
  // Relative-error bound of the per-policy percentile sketches.
  double sketch_relative_error = 0.01;

  // Per-device health monitoring (obs/health.h). When enabled, every
  // device runs a HealthMonitor and the per-rule alert counts are reduced
  // into the policy aggregates (exact integer adds merged in shard order,
  // so fleet alert counts are bit-identical across thread AND shard
  // counts). alerts_path must stay empty — fleets aggregate, they do not
  // trace (per-device files would be O(devices) I/O).
  obs::HealthConfig health{};

  // Crash-safe durability (sim/checkpoint.h): see FleetCheckpointConfig.
  FleetCheckpointConfig checkpoint{};

  // Supervision: a device whose simulation throws is retried up to this
  // many extra times, then quarantined (skipped, counted under
  // fleet/<policy>/quarantined) instead of killing the campaign.
  std::size_t quarantine_retries = 1;

  // Crash-injection test hook: after this many shards complete in this
  // process, the runner raises SIGKILL — the crash the checkpoint layer
  // must survive. 0 = never. The CAPMAN_CRASH_AFTER_SHARDS environment
  // variable overrides it, so shell gates can inject crashes into stock
  // binaries (scripts/check_crash_resume.sh).
  std::size_t crash_after_shards = 0;

  // Supervision test hooks: these device ids throw from inside the
  // per-device simulation. With poison_transient set they throw only on
  // the first attempt (the retry succeeds); otherwise every attempt
  // throws and the device is quarantined. Deterministic by construction.
  std::vector<std::uint64_t> poison_devices;
  bool poison_transient = false;

  // Fleet-operations flight recorder: checkpoint writes/loads and
  // quarantine events, dumped as JSONL (same schema as the per-device
  // recorder; scripts/check_trace_schema.py validates it). Never affects
  // results — events are buffered by workers and replayed on the calling
  // thread in deterministic order after the parallel phase.
  obs::FlightRecorderConfig recorder{};

  /// Human-readable configuration errors; empty means the config is
  /// valid. Aggregates the nested population ("population." prefix),
  /// base SimConfig ("base." prefix) and capman ("capman." prefix)
  /// checks, and additionally rejects base fault plans (fleet faults are
  /// sampled via population.fault_fraction / fault_template).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One sampled device instance — the resolved identity of device
/// `device_id` under a (spec, fleet seed) pair. Exposed so tests and CLI
/// tools can inspect exactly what the fleet will run.
struct DeviceSpec {
  std::uint64_t device_id = 0;
  std::uint64_t seed = 0;  // drives trace generation and policy RNG
  FleetPhone phone = FleetPhone::kNexus;
  battery::Chemistry big_chemistry = battery::Chemistry::kNCA;
  battery::Chemistry little_chemistry = battery::Chemistry::kLMO;
  double big_capacity_mah = 0.0;
  double little_capacity_mah = 0.0;
  PopulationSpec::WorkloadChoice workload{};
  util::Celsius ambient{26.0};
  bool faulty = false;
  std::uint64_t fault_seed = 0;  // meaningful only when faulty
};

/// Population-level reduction of every run of one PolicyKind: counters,
/// fixed-resolution quantized sums and percentile sketches. Merging two
/// aggregates is exact (integer adds + sketch bucket adds), which is what
/// makes fleet results independent of shard/thread layout.
struct PolicyAggregate {
  PolicyKind kind = PolicyKind::kDual;

  std::uint64_t devices = 0;
  std::uint64_t brownouts = 0;       // died of sustained unmet demand
  std::uint64_t truncated = 0;       // hit base.max_duration alive
  std::uint64_t switch_total = 0;
  std::uint64_t faulty_devices = 0;
  std::uint64_t fault_fallbacks = 0; // DegradationGuard fallback episodes
  std::uint64_t fault_dropped_requests = 0;
  // Devices whose simulation kept throwing after bounded retry and were
  // skipped by the supervisor (device-level: every policy of a
  // quarantined device counts it once).
  std::uint64_t quarantined = 0;

  // Quantized sums (exact integer folds; see the header comment). The
  // strong types carry the integer representation: util::MicroSeconds /
  // util::MilliCelsius / util::Millijoules only add to themselves, so a
  // µs/mJ cross-fold no longer compiles.
  util::MicroSeconds lifetime_us;          // service time
  util::MilliCelsius max_temp_mc;          // per-device max hotspot sum
  util::Millijoules energy_delivered_mj;   // delivered energy

  // Health-watchdog reduction (all zero unless FleetConfig::health is
  // enabled): per-rule alert counts summed over the population, exact
  // integer folds like the quantized sums above.
  std::uint64_t health_evaluations = 0;
  std::array<std::uint64_t, obs::kHealthRuleCount> health_alerts{};

  obs::QuantileSketch lifetime_s_sketch;   // seconds
  obs::QuantileSketch max_temp_c_sketch;   // per-device max hotspot, °C
  obs::QuantileSketch switches_sketch;     // switch count per device

  /// Fold one device run in (quantize + observe).
  void add(const SimResult& result, bool faulty);
  /// Fold another aggregate in (exact; commutative and associative).
  void merge(const PolicyAggregate& other);

  /// Total alerts across every rule.
  [[nodiscard]] std::uint64_t health_alert_total() const;

  // Derived means over the quantized sums (0 when no devices).
  [[nodiscard]] double mean_lifetime_s() const;
  [[nodiscard]] double mean_max_temp_c() const;
  [[nodiscard]] double mean_energy_j() const;
  [[nodiscard]] double mean_switches() const;
  [[nodiscard]] double brownout_fraction() const;
};

/// Per-shard accounting kept alongside the policy aggregates (mirrors the
/// fleet/shard/* registry counters).
struct ShardSummary {
  std::size_t shard = 0;
  std::size_t device_begin = 0;  // contiguous ShardPlan range
  std::size_t device_end = 0;
  std::uint64_t engine_steps = 0;
  std::uint64_t quarantined_devices = 0;  // supervisor skips in this shard
  std::uint64_t quarantine_retries = 0;   // extra attempts made
};

/// Process-local durability accounting for one run. Deliberately kept
/// out of the metrics snapshot: a resumed run writes fewer checkpoints
/// and restores more shards than an uninterrupted one, and the snapshot
/// must stay byte-identical between the two (the crash-resume gate
/// compares them with cmp). Operators read these from the CLI's stderr
/// summary instead.
struct FleetCheckpointStats {
  bool enabled = false;
  std::uint64_t every_shards = 0;    // configured cadence, echoed
  bool resumed = false;              // a checkpoint was actually restored
  std::uint64_t resumed_shards = 0;  // shards skipped thanks to resume
  std::uint64_t writes = 0;          // checkpoint files committed
  std::uint64_t bytes_last_write = 0;
  std::uint64_t frames_discarded = 0;  // torn tail frames dropped at load
};

/// Everything one fleet run produces. `metrics` is the deterministic
/// registry snapshot of the fleet/* instruments (docs/FLEET.md maps every
/// name); the aggregates are the same data in typed form.
struct FleetResult {
  std::size_t device_count = 0;
  std::size_t shard_count = 0;
  std::size_t threads = 0;     // resolved worker count (wall clock only)
  std::uint64_t seed = 0;
  bool health_enabled = false; // FleetConfig::health.enabled, echoed

  std::vector<PolicyAggregate> policies;  // FleetConfig::policies order
  std::vector<ShardSummary> shards;       // shard-index order
  std::uint64_t total_engine_steps = 0;
  std::uint64_t quarantined_devices = 0;  // fleet-wide supervisor skips
  std::uint64_t quarantine_retries = 0;   // fleet-wide extra attempts

  FleetCheckpointStats checkpoint;  // process-local (see the struct doc)

  obs::MetricsSnapshot metrics;

  /// Aggregate for `kind`; nullptr when the fleet did not race it.
  [[nodiscard]] const PolicyAggregate* find(PolicyKind kind) const;
};

/// The fleet front door (see the file comment). One runner pins down a
/// validated FleetConfig; run() executes the whole population and returns
/// the merged aggregates. Deterministic: identical configs give
/// bit-identical FleetResults for any thread count.
class FleetRunner {
 public:
  /// Throws std::invalid_argument listing every problem when
  /// `config.validate()` is non-empty.
  explicit FleetRunner(FleetConfig config);

  // Non-copyable AND non-movable: the runner is the stable owner of the
  // validated fleet configuration, mirroring ExperimentRunner. Locked in
  // by tests/util/type_traits_test.
  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;
  FleetRunner(FleetRunner&&) = delete;
  FleetRunner& operator=(FleetRunner&&) = delete;

  /// Simulate the whole population. Per-device series capture and
  /// telemetry file sinks are force-disabled regardless of the base
  /// config — fleets aggregate, they do not trace.
  [[nodiscard]] FleetResult run() const;

  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// Resolved shard count (the auto default applied).
  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  /// Resolved worker-thread count (wall clock only, never results).
  [[nodiscard]] std::size_t thread_count() const { return threads_; }

  /// The per-device seed: a splitmix64-style mix of (fleet_seed,
  /// device_id). Pure function — the determinism substrate.
  [[nodiscard]] static std::uint64_t device_seed(std::uint64_t fleet_seed,
                                                 std::uint64_t device_id);

  /// Sample the identity of device `device_id`. Pure function of its
  /// arguments; FleetRunner::run() calls exactly this per device.
  [[nodiscard]] static DeviceSpec sample_device(const PopulationSpec& spec,
                                                std::uint64_t fleet_seed,
                                                std::uint64_t device_id);

 private:
  FleetConfig config_;
  std::size_t shards_ = 1;
  std::size_t threads_ = 1;
  // Effective crash-injection threshold: config_.crash_after_shards,
  // overridden by CAPMAN_CRASH_AFTER_SHARDS (read once at construction).
  std::size_t crash_after_ = 0;
};

}  // namespace capman::sim
