#include "sim/engine.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <exception>
#include <optional>
#include <stdexcept>

#include "device/power_consumer.h"
#include "obs/spans.h"
#include "thermal/tec_consumer.h"

namespace capman::sim {

namespace {

// Consumers + arbiter for one run, built only when the budget plan is
// enabled: without a rig the loop below is byte-for-byte the pre-arbiter
// code path, so disabled configs are bit-identical by construction (the
// same discipline FaultInjector follows).
struct ArbiterRig {
  ArbiterRig(const core::PowerBudgetArbiterConfig& config,
             const device::PhoneModel& phone, const thermal::Tec& tec_model)
      : cpu(phone.cpu()),
        screen(phone.screen()),
        wifi(phone.wifi()),
        tec(tec_model),
        arbiter(config) {}

  device::CpuPowerConsumer cpu;
  device::ScreenPowerConsumer screen;
  device::WifiPowerConsumer wifi;
  thermal::TecPowerConsumer tec;
  std::array<device::PowerConsumer*, device::kConsumerKindCount> consumers{
      &cpu, &screen, &wifi, &tec};
  core::PowerBudgetArbiter arbiter;
};

}  // namespace

std::vector<std::string> SimConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(dt.value() > 0.0, "dt must be > 0");
  require(max_duration.value() > 0.0, "max_duration must be > 0");
  require(death_grace.value() > 0.0, "death_grace must be > 0");
  require(series_period.value() > 0.0, "series_period must be > 0");
  require(practice_capacity_mah > 0.0, "practice_capacity_mah must be > 0");
  for (auto& error : pack_config.validate()) {
    errors.push_back("pack_config." + error);
  }
  for (auto& error : thermal_config.validate()) {
    errors.push_back("thermal_config." + error);
  }
  for (auto& error : cooling_config.validate()) {
    errors.push_back("cooling_config." + error);
  }
  for (auto& error : telemetry.validate()) {
    errors.push_back("telemetry." + error);
  }
  for (auto& error : budget.validate()) {
    errors.push_back("budget." + error);
  }
  for (auto& error : faults.validate()) {
    errors.push_back(std::move(error));
  }
  return errors;
}

SimEngine::SimEngine(const SimConfig& config) : config_(config) {
  const auto errors = config_.validate();
  if (!errors.empty()) {
    std::string message = "invalid SimConfig:";
    for (const auto& error : errors) {
      message += "\n  - " + error;
    }
    throw std::invalid_argument(message);
  }
}

SimResult SimEngine::run(const workload::Trace& trace,
                         policy::BatteryPolicy& policy,
                         const device::PhoneModel& phone) const {
  SimResult result;
  result.workload = trace.name();
  result.policy = policy.name();
  result.phone = phone.profile().name;

  // Telemetry bundle (src/obs): registry + decision sink + span profiler,
  // built per run so concurrent engines never share sinks. The profiler is
  // installed as the ambient SpanProfiler only for the duration of this
  // run; the policy's registry binding is likewise detached before
  // returning (run_cycles reuses policy instances across runs).
  obs::Telemetry telemetry{config_.telemetry};
  std::optional<obs::SpanProfiler::Scope> profiler_scope;
  if (telemetry.profiler() != nullptr) {
    obs::set_current_thread_label("sim-main");
    profiler_scope.emplace(*telemetry.profiler());
  }
  policy.bind_metrics(&telemetry.registry(), telemetry.timing_metrics());
  obs::DecisionSink& decision_sink = telemetry.decisions();

  // Time-dimension observability (obs/timeseries.h, obs/flight_recorder.h,
  // obs/health.h). All three are null when their configs are disabled (the
  // default), so the hot loop below keeps its pre-observability shape.
  obs::MetricsSampler* const sampler = telemetry.sampler();
  obs::FlightRecorder* const recorder = telemetry.recorder();
  obs::HealthMonitor* const health = telemetry.health();
  struct SamplerChannels {
    std::size_t soc, power_w, hotspot_c, skin_c, cell_c, demand_w, granted_mw;
  };
  SamplerChannels ch{};
  if (sampler != nullptr) {
    ch.soc = sampler->channel("soc");
    ch.power_w = sampler->channel("power_w");
    ch.hotspot_c = sampler->channel("hotspot_c");
    ch.skin_c = sampler->channel("skin_c");
    ch.cell_c = sampler->channel("cell_c");
    ch.demand_w = sampler->channel("demand_w");
    ch.granted_mw = sampler->channel("granted_mw");
  }

  // Fault injection (sim/faults.h). The injector is only built when the
  // plan is enabled: with no injector the run is byte-for-byte the code
  // path that existed before the fault layer, so zero-fault configs are
  // bit-identical by construction (and the force_injection_path hook lets
  // tests assert the decorated path is identical too).
  std::unique_ptr<FaultInjector> injector;
  if (config_.faults.enabled()) {
    injector = std::make_unique<FaultInjector>(config_.faults);
  }

  // Power source: the Practice baseline runs the original single-battery
  // phone; everything else runs the big.LITTLE pack (with the decorated
  // switch facility when faults are injected).
  std::unique_ptr<battery::PowerSource> source;
  const battery::DualBatteryPack* dual = nullptr;
  if (policy.wants_single_pack()) {
    source = std::make_unique<battery::SingleBatteryPack>(
        config_.practice_chemistry, config_.practice_capacity_mah);
  } else {
    std::unique_ptr<battery::SwitchFacility> facility;
    if (injector) {
      facility = injector->make_switch_facility(
          config_.pack_config.switch_config);
    }
    auto pack = std::make_unique<battery::DualBatteryPack>(
        config_.pack_config, std::move(facility));
    dual = pack.get();
    source = std::move(pack);
  }

  thermal::PhoneThermal thermal{config_.thermal_config, config_.tec_params};
  thermal::CoolingController cooling{config_.cooling_config};
  workload::TraceCursor cursor{trace};

  // Power-budget arbiter (core/power_budget.h). The arbiter models the
  // management facility's own hardware (fuel gauge, comparator, thermistor
  // next to the pack), so it reads ground truth, never the policy's
  // possibly-corrupted sensor view.
  std::unique_ptr<ArbiterRig> rig;
  double last_rail_v = config_.budget.nominal_v;
  double last_rebudget_s = 0.0;
  core::BudgetLevel budget_level = core::BudgetLevel::kFull;
  double sum_budget_x_dt = 0.0;
  double shed_j = 0.0;
  std::uint64_t throttled_steps = 0;
  std::uint64_t tec_vetoes = 0;
  const auto budget_inputs = [&]() {
    core::BudgetInputs in;
    in.big_soc = source->big_soc();
    in.little_soc = source->little_soc();
    in.active = source->active();
    in.rail_v = last_rail_v;
    in.supercap_fill = dual != nullptr ? dual->supercap().fill() : 1.0;
    in.skin_c = thermal.surface_temperature().value();
    in.cell_c = thermal.battery_temperature().value();
    in.hotspot_c = thermal.cpu_temperature().value();
    return in;
  };
  if (config_.budget.enabled) {
    rig = std::make_unique<ArbiterRig>(config_.budget, phone, thermal.tec());
    rig->arbiter.rebudget(budget_inputs(), budget_level, rig->consumers);
  }

  const double dt_s = config_.dt.value();
  const util::Seconds dt = config_.dt;
  double t = 0.0;
  double unmet_s = 0.0;
  double last_consult_s = -1.0;
  double tec_power_w = 0.0;  // TEC draw decided last step (one-step lag)
  double next_sample_s = 0.0;
  double sum_power_x_dt = 0.0;
  util::RunningStats cpu_temp_stats;
  util::RunningStats surface_temp_stats;
  double tec_on_s = 0.0;

  // Run counters, published into the registry after the loop (locals keep
  // the hot loop free of atomics even when telemetry is fully enabled).
  std::uint64_t steps = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t consults = 0;
  std::uint64_t emergency_consults = 0;
  std::uint64_t unmet_steps = 0;

  // Flight-recorder edge detectors: the ring records transitions, not
  // levels, so a quiet run stays quiet even with the recorder armed.
  std::size_t last_switch_count = 0;
  bool last_stuck = false;
  bool last_guard = false;

  // Black-box landing on crash: if anything in the loop below throws, dump
  // whatever the ring holds before the exception unwinds past the engine.
  struct CrashDump {
    obs::FlightRecorder* recorder;
    const double* now_s;
    int armed = std::uncaught_exceptions();
    ~CrashDump() {
      if (recorder != nullptr && std::uncaught_exceptions() > armed) {
        try {
          recorder->record(*now_s, obs::FlightEventKind::kEngine, "exception");
          recorder->trigger(*now_s, "engine-exception");
        } catch (...) {  // a failing dump must not mask the original error
        }
      }
    }
  } crash_dump{recorder, &t};

  // engine.run is closed by hand (not RAII) so the span lands in the
  // buffers before Telemetry::finish() serialises the trace below.
  obs::SpanProfiler* const run_profiler = obs::SpanProfiler::current();
  const double run_start_us =
      run_profiler != nullptr ? run_profiler->now_us() : 0.0;
  while (t < config_.max_duration.value()) {
    const bool fired = cursor.advance(t);
    const device::DeviceDemand& demand = cursor.demand_at(t);
    // Budget shaping: each consumer trims its slice of the raw demand
    // under the cap it was granted; the raw-minus-shaped draw is the shed
    // power (user-visible throttling the budget bought safety with).
    device::DeviceDemand shaped;
    const device::DeviceDemand* served = &demand;
    if (rig) {
      shaped = demand;
      rig->cpu.shape(shaped);
      rig->screen.shape(shaped);
      rig->wifi.shape(shaped);
      served = &shaped;
    }
    const device::ComponentPower comp = phone.power(*served);
    if (rig) {
      const double shed_w =
          phone.power(demand).total().value() - comp.total().value();
      if (shed_w > 1e-12) {
        ++throttled_steps;
        shed_j += shed_w * dt_s;
      }
    }

    // The policy is consulted on every trace event; additionally, the rail
    // monitor (comparator input) triggers an emergency consultation when
    // the previous step's demand went unmet - the paper's facility "can
    // switch between batteries in milliseconds". The emergency consult only
    // helps a policy whose decision logic actually picks the other cell.
    const bool emergency = unmet_s > 0.0 && t - last_consult_s >= 0.2;
    if (fired || emergency) {
      const obs::ScopedSpan consult_span{"engine.consult", "sim"};
      if (fired) ++events_fired;
      ++consults;
      policy::PolicyContext ctx;
      ctx.now_s = t;
      ctx.device = demand.state_vector();
      ctx.demand_w = comp.total().value();
      ctx.active = source->active();
      if (injector) {
        // Policies observe the world through the (possibly corrupted)
        // sensor channels, never the ground truth.
        ctx.big_soc = injector->read_big_soc(source->big_soc());
        ctx.little_soc = injector->read_little_soc(source->little_soc());
        ctx.hotspot_c =
            injector->read_hotspot_c(thermal.cpu_temperature().value());
      } else {
        ctx.big_soc = source->big_soc();
        ctx.little_soc = source->little_soc();
        ctx.hotspot_c = thermal.cpu_temperature().value();
      }
      ctx.emergency = emergency && !fired;
      if (ctx.emergency) ++emergency_consults;
      ctx.interval_avg_w = comp.total().value();
      ctx.interval_peak_w = comp.total().value();
      ctx.interval_duration_s = cursor.next_event_time(t) - t;
      ctx.pack = dual;
      if (rig) {
        // capman-lint: allow(raw-unit, policy context carries plain doubles)
        ctx.granted_budget_mw = rig->arbiter.last_grant().granted_mw.raw();
        ctx.budget_level = budget_level;
      }
      const workload::Action& action = cursor.action_at(t);
      const auto choice = policy.on_event(ctx, action);
      source->request(choice, util::Seconds{t});
      last_consult_s = t;
      if (rig) {
        // Every consultation re-arbitrates: the policy's preferred level
        // (learned, for CAPMAN with learn_budget) meets the battery and
        // thermal reality the arbiter derives the budget from.
        budget_level = policy.preferred_budget_level();
        rig->arbiter.rebudget(budget_inputs(), budget_level, rig->consumers);
        last_rebudget_s = t;
        if (recorder != nullptr) {
          recorder->record(
              t, obs::FlightEventKind::kBudget, "rebudget",
              "level=" + std::to_string(static_cast<int>(budget_level)),
              // capman-lint: allow(raw-unit, flight recorder value is double)
              rig->arbiter.last_grant().granted_mw.raw());
        }
      }
      if (recorder != nullptr) {
        recorder->record(t, obs::FlightEventKind::kDecision,
                         ctx.emergency ? "rail-monitor"
                                       : workload::to_string(action.kind),
                         std::string("policy=") + result.policy +
                             " chosen=" + battery::to_string(choice),
                         ctx.demand_w);
      }

      // One decision-trace record per consultation: what the policy saw,
      // what it chose and why, and what the actuator did with it. Record
      // assembly is skipped entirely when no sink is attached, so the
      // disabled path does no string work.
      if (decision_sink.enabled()) {
        obs::DecisionRecord rec;
        rec.seq = telemetry.next_seq();
        rec.t_s = t;
        rec.policy = result.policy;
        rec.event = ctx.emergency ? "rail-monitor"
                                  : workload::to_string(action.kind);
        rec.param = static_cast<int>(action.param_bucket);
        rec.emergency = ctx.emergency;
        rec.cpu = device::to_string(ctx.device.cpu);
        rec.screen = device::to_string(ctx.device.screen);
        rec.wifi = device::to_string(ctx.device.wifi);
        rec.active = battery::to_string(ctx.active);
        rec.chosen = battery::to_string(choice);
        rec.detail = policy.last_decision_detail();
        rec.switch_requested = choice != ctx.active;
        if (dual != nullptr) {
          rec.switch_accepted =
              rec.switch_requested && dual->switch_facility().target() == choice;
          rec.switch_pending = dual->switch_facility().switch_pending();
        }
        rec.guard_fallback = policy.degradation().in_fallback;
        rec.fault_stuck =
            injector != nullptr && injector->stuck_now(util::Seconds{t});
        rec.big_soc = ctx.big_soc;
        rec.little_soc = ctx.little_soc;
        rec.hotspot_c = ctx.hotspot_c;
        rec.demand_w = ctx.demand_w;
        if (rig) {
          rec.budget_level = static_cast<int>(budget_level);
          // capman-lint: allow(raw-unit, decision trace serializes doubles)
          rec.granted_mw = rig->arbiter.last_grant().granted_mw.raw();
        }
        decision_sink.record(rec);
      }
      if (auto* profiler = obs::SpanProfiler::current()) {
        profiler->sim_instant(ctx.emergency ? "rail-monitor"
                                            : workload::to_string(action.kind),
                              "decision", obs::SpanProfiler::kDecisionTrack, t);
      }
    }

    // Thermal actuation (TEC on/off) from the current hot-spot reading.
    if (config_.enable_tec) {
      cooling.update(thermal);
      // The TEC runs at rated current or not at all, so the budget gates
      // it: a grant below the worst-case draw vetoes the turn-on.
      if (rig && thermal.tec().is_on() && !rig->tec.allows_on()) {
        thermal.tec().turn_off();
        ++tec_vetoes;
      }
    } else {
      thermal.tec().turn_off();
    }

    const util::Watts maintenance = policy.maintenance(util::Seconds{t});
    const util::Watts load =
        comp.total() + maintenance + util::Watts{tec_power_w};

    const auto step = source->step(load, dt, util::Seconds{t});
    policy.record_step(step.delivered, step.losses, step.demand_met);
    if (rig) {
      last_rail_v = step.rail_voltage.value();
      // Comparator-relax rebudget: the sagging rail is the comparator
      // tripping, so the optimistic voltage factor gets re-derived (rate
      // limited; comparator-less kStatic boards cannot see the rail).
      if (config_.budget.cap_method == core::CapMethod::kRelax &&
          last_rail_v < config_.budget.rebudget_trigger_v &&
          t - last_rebudget_s >= config_.budget.min_rebudget_gap_s) {
        rig->arbiter.note_voltage_trigger();
        rig->arbiter.rebudget(budget_inputs(), budget_level, rig->consumers);
        last_rebudget_s = t;
        if (recorder != nullptr) {
          recorder->record(t, obs::FlightEventKind::kBudget, "relax-rebudget",
                           "rail_v=" + std::to_string(last_rail_v),
                           // capman-lint: allow(raw-unit, recorder value is double)
                           rig->arbiter.last_grant().granted_mw.raw());
        }
      }
      // capman-lint: allow(raw-unit, time-weighted budget integral is double)
      sum_budget_x_dt += rig->arbiter.last_grant().effective_mw.raw() * dt_s;
    }

    // Thermal integration; CPU node carries compute + policy maintenance,
    // board carries screen/WiFi dissipation, battery carries its losses.
    const util::Watts tec_power =
        thermal.step(comp.cpu + maintenance, step.heat,
                     comp.screen + comp.wifi, dt);
    tec_power_w = tec_power.value();

    // --- Metrics ---
    result.energy_delivered_j += step.delivered.value();
    result.energy_lost_j += step.losses.value();
    result.tec_energy_j += tec_power_w * dt_s;
    if (thermal.tec().is_on()) tec_on_s += dt_s;
    sum_power_x_dt += load.value() * dt_s;
    cpu_temp_stats.add(thermal.cpu_temperature().value());
    surface_temp_stats.add(thermal.surface_temperature().value());

    if (config_.record_series && t >= next_sample_s) {
      result.soc_series.add(t, source->soc());
      result.power_series.add(t, load.value());
      result.cpu_temp_series.add(t, thermal.cpu_temperature().value());
      result.surface_temp_series.add(t, thermal.surface_temperature().value());
      result.tec_power_series.add(t, tec_power_w);
      // Mirror the key series onto Perfetto counter tracks (sim timeline),
      // at the same decimation as the CSV series.
      if (auto* profiler = obs::SpanProfiler::current()) {
        profiler->sim_counter("soc", t, source->soc());
        profiler->sim_counter("power_w", t, load.value());
        profiler->sim_counter("cpu_temp_c", t,
                              thermal.cpu_temperature().value());
      }
      next_sample_s = t + config_.series_period.value();
    }

    // --- Time-dimension observability (all sim-clock driven) ---
    if (recorder != nullptr) {
      const std::size_t switches = source->switch_count();
      if (switches != last_switch_count) {
        recorder->record(
            t, obs::FlightEventKind::kSwitch, "latched",
            std::string("active=") + battery::to_string(source->active()),
            static_cast<double>(switches));
        last_switch_count = switches;
      }
      if (injector) {
        const bool stuck = injector->stuck_now(util::Seconds{t});
        if (stuck != last_stuck) {
          recorder->record(t, obs::FlightEventKind::kFault,
                           stuck ? "stuck-enter" : "stuck-exit");
          last_stuck = stuck;
        }
      }
      const bool guard_now = policy.degradation().in_fallback;
      if (guard_now != last_guard) {
        recorder->record(t, obs::FlightEventKind::kGuard,
                         guard_now ? "fallback-enter" : "fallback-exit");
        last_guard = guard_now;
      }
    }
    if (sampler != nullptr && sampler->due(util::Seconds{t})) {
      sampler->set(ch.soc, source->soc());
      sampler->set(ch.power_w, load.value());
      sampler->set(ch.hotspot_c, thermal.cpu_temperature().value());
      sampler->set(ch.skin_c, thermal.surface_temperature().value());
      sampler->set(ch.cell_c, thermal.battery_temperature().value());
      sampler->set(ch.demand_w, comp.total().value());
      const double sampled_grant =
          // capman-lint: allow(raw-unit, sampler channels carry plain doubles)
          rig ? rig->arbiter.last_grant().granted_mw.raw() : 0.0;
      sampler->set(ch.granted_mw, sampled_grant);
      sampler->sample(util::Seconds{t});
    }
    if (health != nullptr && health->due(t)) {
      // The monitor models the management facility's own sensors, so it
      // reads ground truth (like the arbiter), not the policy's view.
      obs::HealthMonitor::Inputs in;
      in.skin_c = thermal.surface_temperature().value();
      in.cell_c = thermal.battery_temperature().value();
      in.soc = source->soc();
      in.demand_mw = comp.total().value() * 1000.0;
      // capman-lint: allow(raw-unit, health inputs carry plain doubles)
      in.granted_mw = rig ? rig->arbiter.last_grant().granted_mw.raw() : 0.0;
      in.budget_active = rig != nullptr;
      in.switch_count = source->switch_count();
      in.guard_engaged = policy.degradation().in_fallback;
      const auto& alerts_fired = health->evaluate(t, in);
      if (recorder != nullptr && !alerts_fired.empty()) {
        for (const auto& alert : alerts_fired) {
          recorder->record(t, obs::FlightEventKind::kAlert,
                           obs::to_string(alert.rule), alert.detail,
                           alert.value);
        }
        if (recorder->config().dump_on_alert) {
          recorder->trigger(t, std::string("alert:") +
                                   obs::to_string(alerts_fired.front().rule));
        }
      }
    }

    ++steps;
    if (!step.demand_met) ++unmet_steps;

    // --- Death conditions ---
    // Leaky integrator: unmet demand accumulates; met demand forgives it
    // only slowly (a user tolerates one stutter, not one every few
    // seconds). A phone limping along on brief recovery dribbles therefore
    // still dies, as real hardware does on a sagging rail.
    if (!step.demand_met) {
      unmet_s += dt_s;
      if (unmet_s >= config_.death_grace.value()) {
        result.died_of_brownout = !step.exhausted;
        t += dt_s;
        break;
      }
    } else {
      unmet_s = std::max(0.0, unmet_s - 0.1 * dt_s);
    }
    if (step.exhausted) {
      t += dt_s;
      break;
    }
    t += dt_s;
  }

  result.service_time_s = t;
  result.truncated = t >= config_.max_duration.value();
  result.avg_power_w = t > 0.0 ? sum_power_x_dt / t : 0.0;
  result.avg_cpu_temp_c = cpu_temp_stats.mean();
  result.max_cpu_temp_c = cpu_temp_stats.max();
  result.avg_surface_temp_c = surface_temp_stats.mean();
  result.max_surface_temp_c = surface_temp_stats.max();
  result.tec_on_fraction = t > 0.0 ? tec_on_s / t : 0.0;
  result.switch_count = source->switch_count();
  result.big_active_s =
      source->activation_time(battery::BatterySelection::kBig).value();
  result.little_active_s =
      source->activation_time(battery::BatterySelection::kLittle).value();
  result.end_big_soc = source->big_soc();
  result.end_little_soc = source->little_soc();
  if (injector) {
    // Collect while the pack (and thus the decorated facility) is alive.
    result.faults = injector->collect();
    const auto degradation = policy.degradation();
    result.faults.detected_switch_failures = degradation.failures_detected;
    result.faults.fallback_episodes = degradation.fallback_episodes;
    result.faults.fallback_retries = degradation.retries;
  }

  // --- Telemetry teardown -------------------------------------------------
  // Publish the run's cumulative counters into the registry, then snapshot
  // it (writing any configured output files) and surface the snapshot on
  // the result. Publication order does not matter: snapshots are sorted.
  obs::MetricsRegistry& registry = telemetry.registry();
  registry.counter("engine/steps").add(steps);
  registry.counter("engine/events_fired").add(events_fired);
  registry.counter("engine/consults").add(consults);
  registry.counter("engine/emergency_consults").add(emergency_consults);
  registry.counter("engine/unmet_steps").add(unmet_steps);
  registry.counter("switch/count").add(result.switch_count);
  registry.gauge("switch/big_active_s").set(result.big_active_s);
  registry.gauge("switch/little_active_s").set(result.little_active_s);
  if (injector) result.faults.publish(registry);
  if (rig) {
    result.avg_budget_mw = t > 0.0 ? sum_budget_x_dt / t : 0.0;
    result.budget_shed_j = shed_j;
    result.budget_throttled_steps = throttled_steps;
    result.budget_rebudgets = rig->arbiter.rebudget_count();
    result.budget_tec_vetoes = tec_vetoes;
    registry.counter("arbiter/throttled_steps").add(throttled_steps);
    registry.counter("arbiter/tec_vetoes").add(tec_vetoes);
    registry.gauge("arbiter/shed_j").set(shed_j);
    registry.gauge("arbiter/avg_budget_mw").set(result.avg_budget_mw);
    rig->arbiter.publish_metrics(registry);
  }
  policy.publish_metrics(registry);
  if (run_profiler != nullptr) {
    run_profiler->complete("engine.run", "sim", run_start_us,
                           run_profiler->now_us() - run_start_us);
    registry.counter("engine/trace_events").add(run_profiler->event_count());
  }
  if (recorder != nullptr && recorder->config().dump_at_end) {
    recorder->trigger(t, "end-of-run");
  }
  policy.bind_metrics(nullptr, false);
  profiler_scope.reset();  // uninstall before serialising the trace
  result.metrics = telemetry.finish();
  if (health != nullptr) {
    // Same view contract as FaultStats: HealthStats reconstructs from the
    // snapshot Telemetry::finish() published into.
    result.health = obs::HealthStats::from_snapshot(result.metrics);
    result.health_alerts = health->alerts();
  }
  if (injector) {
    // Round-trip through the snapshot: FaultStats is a view over the
    // registry, and reconstructing it here keeps that contract honest.
    result.faults = FaultStats::from_snapshot(result.metrics);
  }
  return result;
}

}  // namespace capman::sim
