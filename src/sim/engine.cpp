#include "sim/engine.h"

#include <algorithm>
#include <cmath>

namespace capman::sim {

SimEngine::SimEngine(const SimConfig& config) : config_(config) {}

SimResult SimEngine::run(const workload::Trace& trace,
                         policy::BatteryPolicy& policy,
                         const device::PhoneModel& phone) {
  SimResult result;
  result.workload = trace.name();
  result.policy = policy.name();
  result.phone = phone.profile().name;

  // Power source: the Practice baseline runs the original single-battery
  // phone; everything else runs the big.LITTLE pack.
  std::unique_ptr<battery::PowerSource> source;
  const battery::DualBatteryPack* dual = nullptr;
  if (policy.wants_single_pack()) {
    source = std::make_unique<battery::SingleBatteryPack>(
        config_.practice_chemistry, config_.practice_capacity_mah);
  } else {
    auto pack = std::make_unique<battery::DualBatteryPack>(config_.pack_config);
    dual = pack.get();
    source = std::move(pack);
  }

  thermal::PhoneThermal thermal{config_.thermal_config, config_.tec_params};
  thermal::CoolingController cooling{config_.cooling_config};
  workload::TraceCursor cursor{trace};

  const double dt_s = config_.dt.value();
  const util::Seconds dt = config_.dt;
  double t = 0.0;
  double unmet_s = 0.0;
  double last_consult_s = -1.0;
  double tec_power_w = 0.0;  // TEC draw decided last step (one-step lag)
  double next_sample_s = 0.0;
  double sum_power_x_dt = 0.0;
  util::RunningStats cpu_temp_stats;
  util::RunningStats surface_temp_stats;
  double tec_on_s = 0.0;

  while (t < config_.max_duration.value()) {
    const bool fired = cursor.advance(t);
    const device::DeviceDemand& demand = cursor.demand_at(t);
    const device::ComponentPower comp = phone.power(demand);

    // The policy is consulted on every trace event; additionally, the rail
    // monitor (comparator input) triggers an emergency consultation when
    // the previous step's demand went unmet - the paper's facility "can
    // switch between batteries in milliseconds". The emergency consult only
    // helps a policy whose decision logic actually picks the other cell.
    const bool emergency = unmet_s > 0.0 && t - last_consult_s >= 0.2;
    if (fired || emergency) {
      policy::PolicyContext ctx;
      ctx.now_s = t;
      ctx.device = demand.state_vector();
      ctx.demand_w = comp.total().value();
      ctx.active = source->active();
      ctx.big_soc = source->big_soc();
      ctx.little_soc = source->little_soc();
      ctx.hotspot_c = thermal.cpu_temperature().value();
      ctx.emergency = emergency && !fired;
      ctx.interval_avg_w = comp.total().value();
      ctx.interval_peak_w = comp.total().value();
      ctx.interval_duration_s = cursor.next_event_time(t) - t;
      ctx.pack = dual;
      const auto choice = policy.on_event(ctx, cursor.action_at(t));
      source->request(choice, util::Seconds{t});
      last_consult_s = t;
    }

    // Thermal actuation (TEC on/off) from the current hot-spot reading.
    if (config_.enable_tec) {
      cooling.update(thermal);
    } else {
      thermal.tec().turn_off();
    }

    const util::Watts maintenance = policy.maintenance(util::Seconds{t});
    const util::Watts load =
        comp.total() + maintenance + util::Watts{tec_power_w};

    const auto step = source->step(load, dt, util::Seconds{t});
    policy.record_step(step.delivered, step.losses, step.demand_met);

    // Thermal integration; CPU node carries compute + policy maintenance,
    // board carries screen/WiFi dissipation, battery carries its losses.
    const util::Watts tec_power =
        thermal.step(comp.cpu + maintenance, step.heat,
                     comp.screen + comp.wifi, dt);
    tec_power_w = tec_power.value();

    // --- Metrics ---
    result.energy_delivered_j += step.delivered.value();
    result.energy_lost_j += step.losses.value();
    result.tec_energy_j += tec_power_w * dt_s;
    if (thermal.tec().is_on()) tec_on_s += dt_s;
    sum_power_x_dt += load.value() * dt_s;
    cpu_temp_stats.add(thermal.cpu_temperature().value());
    surface_temp_stats.add(thermal.surface_temperature().value());

    if (config_.record_series && t >= next_sample_s) {
      result.soc_series.add(t, source->soc());
      result.power_series.add(t, load.value());
      result.cpu_temp_series.add(t, thermal.cpu_temperature().value());
      result.surface_temp_series.add(t, thermal.surface_temperature().value());
      result.tec_power_series.add(t, tec_power_w);
      next_sample_s = t + config_.series_period.value();
    }

    // --- Death conditions ---
    // Leaky integrator: unmet demand accumulates; met demand forgives it
    // only slowly (a user tolerates one stutter, not one every few
    // seconds). A phone limping along on brief recovery dribbles therefore
    // still dies, as real hardware does on a sagging rail.
    if (!step.demand_met) {
      unmet_s += dt_s;
      if (unmet_s >= config_.death_grace.value()) {
        result.died_of_brownout = !step.exhausted;
        t += dt_s;
        break;
      }
    } else {
      unmet_s = std::max(0.0, unmet_s - 0.1 * dt_s);
    }
    if (step.exhausted) {
      t += dt_s;
      break;
    }
    t += dt_s;
  }

  result.service_time_s = t;
  result.truncated = t >= config_.max_duration.value();
  result.avg_power_w = t > 0.0 ? sum_power_x_dt / t : 0.0;
  result.avg_cpu_temp_c = cpu_temp_stats.mean();
  result.max_cpu_temp_c = cpu_temp_stats.max();
  result.avg_surface_temp_c = surface_temp_stats.mean();
  result.max_surface_temp_c = surface_temp_stats.max();
  result.tec_on_fraction = t > 0.0 ? tec_on_s / t : 0.0;
  result.switch_count = source->switch_count();
  result.big_active_s =
      source->activation_time(battery::BatterySelection::kBig).value();
  result.little_active_s =
      source->activation_time(battery::BatterySelection::kLittle).value();
  result.end_big_soc = source->big_soc();
  result.end_little_soc = source->little_soc();
  return result;
}

}  // namespace capman::sim
