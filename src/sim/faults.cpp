#include "sim/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/spans.h"

namespace capman::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// FaultPlanConfig

bool FaultPlanConfig::any_active() const {
  return stuck_rate_per_min > 0.0 || latency_jitter_frac > 0.0 ||
         latency_spike_prob > 0.0 || transient_fail_prob > 0.0 ||
         // The biases default to exactly 0.0 ("fault disabled"); comparing
         // against the sentinel is intentional.
         // capman-lint: allow(float-compare)
         droop_prob > 0.0 || soc_bias != 0.0 || soc_noise_stddev > 0.0 ||
         // capman-lint: allow(float-compare)
         temp_bias_c != 0.0 || temp_noise_stddev_c > 0.0 ||
         sensor_dropout_prob > 0.0;
}

std::vector<std::string> FaultPlanConfig::validate() const {
  std::vector<std::string> errors;
  auto require = [&errors](bool ok, const char* message) {
    if (!ok) errors.emplace_back(message);
  };
  require(stuck_rate_per_min >= 0.0,
          "faults.stuck_rate_per_min must be >= 0");
  require(stuck_min_duration.value() > 0.0,
          "faults.stuck_min_duration must be > 0");
  require(stuck_max_duration.value() >= stuck_min_duration.value(),
          "faults.stuck_max_duration must be >= stuck_min_duration");
  require(latency_jitter_frac >= 0.0,
          "faults.latency_jitter_frac must be >= 0");
  require(latency_spike_prob >= 0.0 && latency_spike_prob <= 1.0,
          "faults.latency_spike_prob must be in [0, 1]");
  require(latency_spike_factor >= 1.0,
          "faults.latency_spike_factor must be >= 1");
  require(transient_fail_prob >= 0.0 && transient_fail_prob < 1.0,
          "faults.transient_fail_prob must be in [0, 1)");
  require(max_transient_retries >= 0,
          "faults.max_transient_retries must be >= 0");
  require(transient_retry_delay.value() > 0.0,
          "faults.transient_retry_delay must be > 0");
  require(droop_prob >= 0.0 && droop_prob <= 1.0,
          "faults.droop_prob must be in [0, 1]");
  require(droop_ride_through >= 0.0 && droop_ride_through <= 1.0,
          "faults.droop_ride_through must be in [0, 1]");
  require(droop_duration.value() >= 0.0,
          "faults.droop_duration must be >= 0");
  require(soc_noise_stddev >= 0.0, "faults.soc_noise_stddev must be >= 0");
  require(temp_noise_stddev_c >= 0.0,
          "faults.temp_noise_stddev_c must be >= 0");
  require(sensor_dropout_prob >= 0.0 && sensor_dropout_prob < 1.0,
          "faults.sensor_dropout_prob must be in [0, 1)");
  return errors;
}

// ---------------------------------------------------------------------------
// FaultySwitchFacility

FaultySwitchFacility::FaultySwitchFacility(
    const battery::SwitchFacilityConfig& config, const FaultPlanConfig& plan,
    util::Rng rng, battery::BatterySelection initial)
    : battery::SwitchFacility(config, initial), plan_(plan), rng_(rng) {
  // Draw the first stuck-episode arrival up front so episode timing does
  // not depend on when (or whether) requests happen to arrive.
  if (plan_.stuck_rate_per_min > 0.0) {
    next_stuck_start_s_ =
        rng_.exponential(plan_.stuck_rate_per_min / 60.0);
  } else {
    next_stuck_start_s_ = kInf;
  }
}

void FaultySwitchFacility::roll_stuck_episodes(double t) {
  while (t >= next_stuck_start_s_) {
    const double start = next_stuck_start_s_;
    const double duration = rng_.uniform(plan_.stuck_min_duration.value(),
                                         plan_.stuck_max_duration.value());
    stuck_until_s_ = start + duration;
    ++counters_.stuck_episodes;
    counters_.stuck_time_s += duration;
    // Episode window on the simulation-time fault track; the schedule is
    // pre-drawn, so the whole window is known the moment it is entered.
    if (auto* profiler = obs::SpanProfiler::current()) {
      profiler->sim_complete("comparator stuck", "fault",
                             obs::SpanProfiler::kFaultTrack, start, duration);
    }
    // Next arrival counts from the end of this episode (the comparator
    // cannot re-stick while already stuck).
    next_stuck_start_s_ =
        stuck_until_s_ + rng_.exponential(plan_.stuck_rate_per_min / 60.0);
  }
}

bool FaultySwitchFacility::stuck_now(util::Seconds now) const {
  return now.value() < stuck_until_s_;
}

bool FaultySwitchFacility::attempt(battery::BatterySelection target,
                                   util::Seconds now, int retries_left) {
  // Stuck comparator: the request is eaten without a trace — the caller
  // sees the same "false" an already-satisfied no-op request returns.
  if (now.value() < stuck_until_s_) {
    ++counters_.dropped_requests;
    retry_.reset();  // a stuck board also loses the retry buffer
    return false;
  }
  // Transient glitch: the request is lost, but the board notices and
  // schedules a bounded retry.
  if (plan_.transient_fail_prob > 0.0 &&
      rng_.chance(plan_.transient_fail_prob)) {
    ++counters_.transient_failures;
    if (retries_left > 0) {
      retry_ = PendingRetry{target,
                            now.value() + plan_.transient_retry_delay.value(),
                            retries_left};
    } else {
      retry_.reset();  // budget exhausted; the request is simply lost
    }
    return false;
  }
  retry_.reset();  // this attempt got through; nothing left to retry
  const bool initiated = battery::SwitchFacility::request(target, now);
  if (initiated && plan_.droop_prob > 0.0 && rng_.chance(plan_.droop_prob)) {
    ++counters_.droop_episodes;
    // Droop lasts through the switching transient plus the configured tail.
    droop_until_s_ = now.value() + config().latency.value() +
                     plan_.droop_duration.value();
    if (auto* profiler = obs::SpanProfiler::current()) {
      profiler->sim_complete("supercap droop", "fault",
                             obs::SpanProfiler::kFaultTrack, now.value(),
                             droop_until_s_ - now.value());
    }
  }
  return initiated;
}

bool FaultySwitchFacility::request(battery::BatterySelection target,
                                   util::Seconds now) {
  roll_stuck_episodes(now.value());
  // No-op requests (already active or already pending toward the target)
  // must stay no-ops: they consume no RNG and trip no faults, matching the
  // ideal facility bit for bit.
  if (target == this->target()) return false;
  return attempt(target, now, plan_.max_transient_retries);
}

util::Joules FaultySwitchFacility::advance(util::Seconds now) {
  roll_stuck_episodes(now.value());
  if (retry_ && now.value() >= retry_->at_s) {
    const PendingRetry due = *retry_;
    retry_.reset();
    // Skip the retry if a later successful request already satisfied it.
    if (due.target != this->target()) {
      ++counters_.transient_retries;
      attempt(due.target, now, due.attempts_left - 1);
    }
  }
  return battery::SwitchFacility::advance(now);
}

double FaultySwitchFacility::surge_ride_through(util::Seconds now) const {
  if (now.value() < droop_until_s_) return plan_.droop_ride_through;
  return 1.0;
}

util::Seconds FaultySwitchFacility::switch_latency(util::Seconds now) {
  double latency = config().latency.value();
  bool perturbed = false;
  if (plan_.latency_jitter_frac > 0.0) {
    // Multiplicative lognormal-ish jitter: never negative, median at the
    // nominal latency.
    const double factor =
        std::exp(rng_.normal(0.0, plan_.latency_jitter_frac));
    latency *= factor;
    perturbed = true;
  }
  if (plan_.latency_spike_prob > 0.0 &&
      rng_.chance(plan_.latency_spike_prob)) {
    latency *= plan_.latency_spike_factor;
    ++counters_.latency_spikes;
    perturbed = true;
  }
  if (perturbed) ++counters_.jittered_switches;
  (void)now;
  return util::Seconds{latency};
}

// ---------------------------------------------------------------------------
// SensorChannel

SensorChannel::SensorChannel(double bias, double noise_stddev,
                             double dropout_prob, double lo, double hi,
                             util::Rng rng)
    : bias_(bias),
      noise_stddev_(noise_stddev),
      dropout_prob_(dropout_prob),
      lo_(lo),
      hi_(hi),
      rng_(rng) {}

double SensorChannel::read(double true_value) {
  if (dropout_prob_ > 0.0 && rng_.chance(dropout_prob_) && has_last_) {
    ++dropouts_;
    return last_reading_;
  }
  double reading = true_value;
  // Exact-0.0 sentinel: an untouched channel must stay byte-identical to
  // the no-fault path.  capman-lint: allow(float-compare)
  if (bias_ != 0.0 || noise_stddev_ > 0.0) {
    reading += bias_;
    if (noise_stddev_ > 0.0) reading += rng_.normal(0.0, noise_stddev_);
    reading = std::clamp(reading, lo_, hi_);
    ++corrupted_;
  }
  last_reading_ = reading;
  has_last_ = true;
  return reading;
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(const FaultPlanConfig& plan)
    : plan_(plan),
      rng_(plan.seed),
      big_soc_(plan.soc_bias, plan.soc_noise_stddev, plan.sensor_dropout_prob,
               0.0, 1.0, rng_.split()),
      little_soc_(plan.soc_bias, plan.soc_noise_stddev,
                  plan.sensor_dropout_prob, 0.0, 1.0, rng_.split()),
      hotspot_(plan.temp_bias_c, plan.temp_noise_stddev_c,
               plan.sensor_dropout_prob, -40.0, 150.0, rng_.split()) {}

std::unique_ptr<battery::SwitchFacility> FaultInjector::make_switch_facility(
    const battery::SwitchFacilityConfig& config) {
  auto facility =
      std::make_unique<FaultySwitchFacility>(config, plan_, rng_.split());
  facility_ = facility.get();
  return facility;
}

FaultStats FaultInjector::collect() const {
  FaultStats stats;
  if (facility_ != nullptr) {
    const auto& c = facility_->counters();
    stats.stuck_episodes = c.stuck_episodes;
    stats.stuck_time_s = c.stuck_time_s;
    stats.dropped_requests = c.dropped_requests;
    stats.transient_failures = c.transient_failures;
    stats.transient_retries = c.transient_retries;
    stats.jittered_switches = c.jittered_switches;
    stats.latency_spikes = c.latency_spikes;
    stats.droop_episodes = c.droop_episodes;
  }
  stats.sensor_dropouts =
      big_soc_.dropouts() + little_soc_.dropouts() + hotspot_.dropouts();
  stats.corrupted_reads = big_soc_.corrupted_reads() +
                          little_soc_.corrupted_reads() +
                          hotspot_.corrupted_reads();
  return stats;
}

}  // namespace capman::sim
