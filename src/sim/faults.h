// Fault injection for the actuator and sensing path.
//
// The paper's actuator is real hardware — an LM339AD comparator driving
// MOS tubes from a 20 kHz oscillator, with a supercapacitor smoothing the
// LITTLE rail — and real hardware degrades: the comparator sticks, the
// oscillator-latched switch latency jitters, a request is lost in a
// glitch, the supercap's ride-through droops mid-switch, and fuel-gauge /
// thermistor readings drift, noise up or drop out. This module injects
// exactly those failure modes behind the interfaces the rest of the stack
// already talks to, so SimEngine, battery::DualBatteryPack and the
// policies need no knowledge of which faults are active:
//
//  * FaultPlanConfig  — the seeded schedule of fault episodes.
//  * FaultySwitchFacility — decorator over battery::SwitchFacility:
//      - stuck comparator: requests silently dropped for a window
//        (Poisson arrivals, bounded duration);
//      - latency jitter/spikes: drawn per flip, still oscillator-quantized
//        by the base facility;
//      - transient request failure with bounded, delayed retry;
//      - supercap droop: reduced surge ride-through during the switching
//        transient (reported via surge_ride_through()).
//  * SensorChannel — shim over one scalar sensor: bias, Gaussian noise,
//    dropout to last-known-good.
//  * FaultInjector — per-run bundle the engine owns: builds the decorated
//    facility, shims the sensor reads, and collects FaultStats.
//
// Determinism: all draws flow through a util::Rng seeded from
// FaultPlanConfig::seed — independent of the workload/policy seed — so a
// fault scenario replays exactly. An all-zero plan never perturbs a run:
// the decorator and shims are bit-identical pass-throughs (guarded so no
// arithmetic touches the signal path), which `force_injection_path` lets
// tests assert.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "battery/switcher.h"
#include "sim/metrics.h"
#include "util/rng.h"
#include "util/units.h"

namespace capman::sim {

struct FaultPlanConfig {
  // Seed of the fault stream; deliberately distinct from the experiment
  // seed so fault scenarios replay independently of policy exploration.
  std::uint64_t seed = 1337;

  // --- Stuck comparator -------------------------------------------------
  // Episodes arrive as a Poisson process (exponential gaps) at this rate;
  // during an episode every switch request is silently dropped.
  double stuck_rate_per_min = 0.0;
  util::Seconds stuck_min_duration{6.0};
  util::Seconds stuck_max_duration{15.0};

  // --- Latency jitter ---------------------------------------------------
  // Per-flip multiplicative jitter (lognormal-ish, stddev as a fraction of
  // nominal) plus occasional hard spikes; the oscillator still quantizes.
  double latency_jitter_frac = 0.0;
  double latency_spike_prob = 0.0;
  double latency_spike_factor = 10.0;

  // --- Transient request failure ---------------------------------------
  // A switch-initiating request is lost with this probability; the board
  // retries it after `transient_retry_delay`, at most
  // `max_transient_retries` times (bounded retry).
  double transient_fail_prob = 0.0;
  int max_transient_retries = 3;
  util::Seconds transient_retry_delay{0.1};

  // --- Supercapacitor droop --------------------------------------------
  // With this probability per initiated switch, surge ride-through drops
  // to `droop_ride_through` until `droop_duration` past completion.
  double droop_prob = 0.0;
  double droop_ride_through = 0.3;
  util::Seconds droop_duration{1.0};

  // --- Sensor corruption -------------------------------------------------
  double soc_bias = 0.0;             // additive, SoC in [0,1]
  double soc_noise_stddev = 0.0;     // Gaussian, per read
  double temp_bias_c = 0.0;          // additive, deg C
  double temp_noise_stddev_c = 0.0;  // Gaussian, per read
  double sensor_dropout_prob = 0.0;  // per read -> last-known-good

  // Test hook: route the run through the decorator/shims even when every
  // fault is zero, to assert the injection path is a perfect pass-through.
  bool force_injection_path = false;

  /// True when any fault can actually fire (ignores force_injection_path).
  [[nodiscard]] bool any_active() const;
  /// True when the engine should build the injection path at all.
  [[nodiscard]] bool enabled() const {
    return any_active() || force_injection_path;
  }

  /// Human-readable configuration errors; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Decorator over the ideal switch facility; see file comment. Owned by
/// the DualBatteryPack it is injected into.
class FaultySwitchFacility final : public battery::SwitchFacility {
 public:
  FaultySwitchFacility(const battery::SwitchFacilityConfig& config,
                       const FaultPlanConfig& plan, util::Rng rng,
                       battery::BatterySelection initial =
                           battery::BatterySelection::kBig);

  bool request(battery::BatterySelection target, util::Seconds now) override;
  util::Joules advance(util::Seconds now) override;
  [[nodiscard]] double surge_ride_through(util::Seconds now) const override;

  struct Counters {
    std::size_t stuck_episodes = 0;
    double stuck_time_s = 0.0;
    std::size_t dropped_requests = 0;   // eaten by a stuck comparator
    std::size_t transient_failures = 0; // lost requests (glitch)
    std::size_t transient_retries = 0;  // board-level re-attempts
    std::size_t jittered_switches = 0;  // flips with perturbed latency
    std::size_t latency_spikes = 0;
    std::size_t droop_episodes = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// True while the comparator is inside a stuck episode (for tests).
  [[nodiscard]] bool stuck_now(util::Seconds now) const;

 protected:
  util::Seconds switch_latency(util::Seconds now) override;

 private:
  /// Lazily advance the stuck-episode timeline to time `t`.
  void roll_stuck_episodes(double t);
  /// The fault-checked request path shared by fresh requests and retries.
  /// `retries_left` is the retry budget available if THIS attempt glitches.
  bool attempt(battery::BatterySelection target, util::Seconds now,
               int retries_left);

  FaultPlanConfig plan_;
  util::Rng rng_;
  Counters counters_;

  double next_stuck_start_s_;
  double stuck_until_s_ = -1.0;

  struct PendingRetry {
    battery::BatterySelection target;
    double at_s = 0.0;
    int attempts_left = 0;
  };
  std::optional<PendingRetry> retry_;

  double droop_until_s_ = -1.0;
};

/// Shim over one scalar sensor (fuel gauge, thermistor): additive bias,
/// Gaussian noise, dropout to the last delivered reading, clamped to the
/// physical range. With all knobs at zero, read() returns its input
/// untouched (no arithmetic, no RNG draw).
class SensorChannel {
 public:
  SensorChannel(double bias, double noise_stddev, double dropout_prob,
                double lo, double hi, util::Rng rng);

  double read(double true_value);

  [[nodiscard]] std::size_t dropouts() const { return dropouts_; }
  [[nodiscard]] std::size_t corrupted_reads() const { return corrupted_; }

 private:
  double bias_;
  double noise_stddev_;
  double dropout_prob_;
  double lo_;
  double hi_;
  util::Rng rng_;
  double last_reading_ = 0.0;
  bool has_last_ = false;
  std::size_t dropouts_ = 0;
  std::size_t corrupted_ = 0;
};

/// Per-run bundle of everything the engine needs to inject a FaultPlan.
/// Lifetime: must outlive the pack only until FaultStats are collected;
/// the decorated facility itself is owned by the pack.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlanConfig& plan);

  /// Build the decorated switch facility for a dual pack. The returned
  /// facility is owned by the caller (the pack); the injector keeps a
  /// non-owning pointer for stats collection, so collect() must be called
  /// while the pack is still alive.
  std::unique_ptr<battery::SwitchFacility> make_switch_facility(
      const battery::SwitchFacilityConfig& config);

  double read_big_soc(double true_value) { return big_soc_.read(true_value); }
  double read_little_soc(double true_value) {
    return little_soc_.read(true_value);
  }
  double read_hotspot_c(double true_value) {
    return hotspot_.read(true_value);
  }

  /// True while the decorated comparator is inside a stuck episode (for
  /// the decision-trace recorder's fault_stuck field).
  [[nodiscard]] bool stuck_now(util::Seconds now) const {
    return facility_ != nullptr && facility_->stuck_now(now);
  }

  /// Actuator- and sensor-side fault telemetry accumulated so far.
  /// Scheduler-side fields (fallback episodes etc.) are filled by the
  /// engine from the policy's DegradationStats.
  [[nodiscard]] FaultStats collect() const;

 private:
  FaultPlanConfig plan_;
  util::Rng rng_;
  SensorChannel big_soc_;
  SensorChannel little_soc_;
  SensorChannel hotspot_;
  const FaultySwitchFacility* facility_ = nullptr;  // owned by the pack
};

}  // namespace capman::sim
