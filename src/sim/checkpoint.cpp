#include "sim/checkpoint.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/sketch.h"
#include "util/atomic_file.h"
#include "util/crc32.h"

namespace capman::sim {
namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. Every multi-byte field goes through these so
// the on-disk layout is host-independent (DESIGN.md §16).

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_double(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked read cursor over a frame payload. Every get_* sets
/// `ok = false` instead of reading past the end, and callers check `ok`
/// once at the end — a corrupt payload can only yield a rejected frame,
/// never undefined behavior.
struct Cursor {
  std::string_view bytes;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] bool take(std::size_t n) {
    if (!ok || bytes.size() - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return static_cast<std::uint8_t>(bytes[pos++]);
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 4;
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  double get_double() { return std::bit_cast<double>(get_u64()); }

  [[nodiscard]] bool exhausted() const { return ok && pos == bytes.size(); }
};

// ---------------------------------------------------------------------------
// Frame layer: u8 type | u32 payload length | payload | u32 CRC-32 over
// (type + length + payload).

constexpr std::uint8_t kFrameHeader = 1;
constexpr std::uint8_t kFrameShard = 2;
constexpr std::size_t kFrameOverhead = 1 + 4 + 4;  // type + length + crc
// Backstop against a corrupt length field making the reader "wait" for
// gigabytes: no legitimate frame (10^5-device shards included) comes
// close to this.
constexpr std::uint32_t kMaxFramePayload = 1u << 28;

void put_frame(std::string& out, std::uint8_t type,
               const std::string& payload) {
  std::string head;
  put_u8(head, type);
  put_u32(head, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = util::crc32(head);
  crc = util::crc32(payload, crc);
  out += head;
  out += payload;
  put_u32(out, crc);
}

/// One decoded frame, or nothing when the bytes at `pos` are not a
/// complete, CRC-valid frame (the torn-tail case).
struct Frame {
  std::uint8_t type = 0;
  std::string_view payload;
  std::size_t size = 0;  // total on-disk bytes consumed
};

std::optional<Frame> next_frame(std::string_view bytes, std::size_t pos) {
  if (bytes.size() - pos < kFrameOverhead) return std::nullopt;
  Cursor head{bytes.substr(pos, 5)};
  const std::uint8_t type = head.get_u8();
  const std::uint32_t length = head.get_u32();
  if (length > kMaxFramePayload) return std::nullopt;
  if (bytes.size() - pos < kFrameOverhead + length) return std::nullopt;
  const std::string_view payload = bytes.substr(pos + 5, length);
  Cursor tail{bytes.substr(pos + 5 + length, 4)};
  const std::uint32_t stored_crc = tail.get_u32();
  std::uint32_t crc = util::crc32(bytes.substr(pos, 5));
  crc = util::crc32(payload, crc);
  if (crc != stored_crc) return std::nullopt;
  return Frame{type, payload, kFrameOverhead + length};
}

// ---------------------------------------------------------------------------
// Payload layer.

void put_sketch(std::string& out, const obs::QuantileSketch& sketch) {
  const obs::QuantileSketchState s = sketch.state();
  put_double(out, s.relative_error);
  put_u64(out, s.zero_count);
  put_u64(out, s.count);
  put_double(out, s.min);
  put_double(out, s.max);
  put_u8(out, s.has_extremes ? 1 : 0);
  put_u64(out, s.buckets.size());
  for (const auto& [index, n] : s.buckets) {
    put_i32(out, index);
    put_u64(out, n);
  }
}

std::optional<obs::QuantileSketch> get_sketch(Cursor& in) {
  obs::QuantileSketchState s;
  s.relative_error = in.get_double();
  s.zero_count = in.get_u64();
  s.count = in.get_u64();
  s.min = in.get_double();
  s.max = in.get_double();
  s.has_extremes = in.get_u8() != 0;
  const std::uint64_t buckets = in.get_u64();
  if (!in.ok || buckets > kMaxFramePayload) return std::nullopt;
  s.buckets.reserve(static_cast<std::size_t>(buckets));
  for (std::uint64_t i = 0; i < buckets; ++i) {
    const std::int32_t index = in.get_i32();
    const std::uint64_t n = in.get_u64();
    s.buckets.emplace_back(index, n);
  }
  if (!in.ok || !(s.relative_error > 0.0) || !(s.relative_error < 1.0)) {
    return std::nullopt;
  }
  return obs::QuantileSketch::from_state(s);
}

void put_aggregate(std::string& out, const PolicyAggregate& aggregate) {
  put_u8(out, static_cast<std::uint8_t>(aggregate.kind));
  put_u64(out, aggregate.devices);
  put_u64(out, aggregate.brownouts);
  put_u64(out, aggregate.truncated);
  put_u64(out, aggregate.switch_total);
  put_u64(out, aggregate.faulty_devices);
  put_u64(out, aggregate.fault_fallbacks);
  put_u64(out, aggregate.fault_dropped_requests);
  put_u64(out, aggregate.quarantined);
  // capman-lint: allow(raw-unit, serializing the exact integer folds)
  put_u64(out, aggregate.lifetime_us.raw());
  // capman-lint: allow(raw-unit, serializing the exact integer folds)
  put_i64(out, aggregate.max_temp_mc.raw());
  // capman-lint: allow(raw-unit, serializing the exact integer folds)
  put_u64(out, aggregate.energy_delivered_mj.raw());
  put_u64(out, aggregate.health_evaluations);
  put_u64(out, aggregate.health_alerts.size());
  for (const std::uint64_t n : aggregate.health_alerts) put_u64(out, n);
  put_sketch(out, aggregate.lifetime_s_sketch);
  put_sketch(out, aggregate.max_temp_c_sketch);
  put_sketch(out, aggregate.switches_sketch);
}

std::optional<PolicyAggregate> get_aggregate(Cursor& in,
                                             PolicyKind expected_kind) {
  PolicyAggregate aggregate;
  aggregate.kind = static_cast<PolicyKind>(in.get_u8());
  aggregate.devices = in.get_u64();
  aggregate.brownouts = in.get_u64();
  aggregate.truncated = in.get_u64();
  aggregate.switch_total = in.get_u64();
  aggregate.faulty_devices = in.get_u64();
  aggregate.fault_fallbacks = in.get_u64();
  aggregate.fault_dropped_requests = in.get_u64();
  aggregate.quarantined = in.get_u64();
  aggregate.lifetime_us = util::MicroSeconds{in.get_u64()};
  aggregate.max_temp_mc = util::MilliCelsius{in.get_i64()};
  aggregate.energy_delivered_mj = util::Millijoules{in.get_u64()};
  aggregate.health_evaluations = in.get_u64();
  const std::uint64_t rules = in.get_u64();
  if (!in.ok || rules != aggregate.health_alerts.size()) return std::nullopt;
  for (auto& n : aggregate.health_alerts) n = in.get_u64();
  auto lifetime = get_sketch(in);
  auto temp = get_sketch(in);
  auto switches = get_sketch(in);
  if (!in.ok || !lifetime || !temp || !switches ||
      aggregate.kind != expected_kind) {
    return std::nullopt;
  }
  aggregate.lifetime_s_sketch = std::move(*lifetime);
  aggregate.max_temp_c_sketch = std::move(*temp);
  aggregate.switches_sketch = std::move(*switches);
  return aggregate;
}

std::string encode_header(const CheckpointHeader& header) {
  std::string payload;
  put_u32(payload, header.version);
  put_u64(payload, header.fingerprint);
  put_u64(payload, header.device_count);
  put_u64(payload, header.shard_count);
  put_u64(payload, header.seed);
  put_u64(payload, header.policies.size());
  for (const PolicyKind kind : header.policies) {
    put_u8(payload, static_cast<std::uint8_t>(kind));
  }
  put_double(payload, header.sketch_relative_error);
  return payload;
}

std::optional<CheckpointHeader> decode_header(std::string_view payload) {
  Cursor in{payload};
  CheckpointHeader header;
  header.version = in.get_u32();
  header.fingerprint = in.get_u64();
  header.device_count = in.get_u64();
  header.shard_count = in.get_u64();
  header.seed = in.get_u64();
  const std::uint64_t policies = in.get_u64();
  if (!in.ok || header.version != kCheckpointFormatVersion ||
      policies == 0 || policies > 64) {
    return std::nullopt;
  }
  header.policies.reserve(static_cast<std::size_t>(policies));
  for (std::uint64_t i = 0; i < policies; ++i) {
    header.policies.push_back(static_cast<PolicyKind>(in.get_u8()));
  }
  header.sketch_relative_error = in.get_double();
  if (!in.exhausted()) return std::nullopt;
  return header;
}

std::string encode_shard(const ShardCheckpoint& shard) {
  std::string payload;
  put_u64(payload, shard.shard);
  put_u64(payload, shard.device_begin);
  put_u64(payload, shard.device_end);
  put_u64(payload, shard.engine_steps);
  put_u64(payload, shard.quarantine_retries);
  put_u64(payload, shard.policies.size());
  for (const auto& aggregate : shard.policies) put_aggregate(payload, aggregate);
  return payload;
}

std::optional<ShardCheckpoint> decode_shard(std::string_view payload,
                                            const CheckpointHeader& header) {
  Cursor in{payload};
  ShardCheckpoint shard;
  shard.shard = in.get_u64();
  shard.device_begin = in.get_u64();
  shard.device_end = in.get_u64();
  shard.engine_steps = in.get_u64();
  shard.quarantine_retries = in.get_u64();
  const std::uint64_t policies = in.get_u64();
  if (!in.ok || policies != header.policies.size() ||
      shard.shard >= header.shard_count ||
      shard.device_end < shard.device_begin ||
      shard.device_end > header.device_count) {
    return std::nullopt;
  }
  shard.policies.reserve(static_cast<std::size_t>(policies));
  for (std::uint64_t i = 0; i < policies; ++i) {
    auto aggregate =
        get_aggregate(in, header.policies[static_cast<std::size_t>(i)]);
    if (!aggregate) return std::nullopt;
    shard.policies.push_back(std::move(*aggregate));
  }
  if (!in.exhausted()) return std::nullopt;
  return shard;
}

// ---------------------------------------------------------------------------
// Fingerprint: FNV-1a over the little-endian encoding of every
// result-identity field, so "same fingerprint" means "bit-identical
// fleet result given the same completed work".

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void put_chemistries(
    std::string& out,
    const std::vector<PopulationSpec::ChemistryChoice>& choices) {
  put_u64(out, choices.size());
  for (const auto& choice : choices) {
    put_u8(out, static_cast<std::uint8_t>(choice.chemistry));
    put_double(out, choice.weight);
  }
}

}  // namespace

std::uint64_t checkpoint_fingerprint(const FleetConfig& config,
                                     std::size_t resolved_shards) {
  std::string bytes;
  put_u64(bytes, config.device_count);
  put_u64(bytes, resolved_shards);
  put_u64(bytes, config.seed);
  put_u64(bytes, config.policies.size());
  for (const PolicyKind kind : config.policies) {
    put_u8(bytes, static_cast<std::uint8_t>(kind));
  }
  put_double(bytes, config.sketch_relative_error);
  put_u8(bytes, config.health.enabled ? 1 : 0);

  const PopulationSpec& pop = config.population;
  put_chemistries(bytes, pop.big_chemistries);
  put_chemistries(bytes, pop.little_chemistries);
  put_double(bytes, pop.big_capacity_mah_lo);
  put_double(bytes, pop.big_capacity_mah_hi);
  put_double(bytes, pop.little_capacity_mah_lo);
  put_double(bytes, pop.little_capacity_mah_hi);
  put_u64(bytes, pop.workloads.size());
  for (const auto& choice : pop.workloads) {
    put_u8(bytes, static_cast<std::uint8_t>(choice.workload));
    put_double(bytes, choice.weight);
    put_double(bytes, choice.eta);
    put_double(bytes, choice.toggle_period.value());
  }
  put_u64(bytes, pop.phones.size());
  for (const auto& choice : pop.phones) {
    put_u8(bytes, static_cast<std::uint8_t>(choice.phone));
    put_double(bytes, choice.weight);
  }
  put_double(bytes, pop.ambient_lo.value());
  put_double(bytes, pop.ambient_hi.value());
  put_double(bytes, pop.trace_horizon.value());
  put_double(bytes, pop.fault_fraction);
  const FaultPlanConfig& ft = pop.fault_template;
  put_u64(bytes, ft.seed);
  put_double(bytes, ft.stuck_rate_per_min);
  put_double(bytes, ft.stuck_min_duration.value());
  put_double(bytes, ft.stuck_max_duration.value());
  put_double(bytes, ft.latency_jitter_frac);
  put_double(bytes, ft.latency_spike_prob);
  put_double(bytes, ft.latency_spike_factor);
  put_double(bytes, ft.transient_fail_prob);
  put_i64(bytes, ft.max_transient_retries);
  put_double(bytes, ft.transient_retry_delay.value());
  put_double(bytes, ft.droop_prob);
  put_double(bytes, ft.droop_ride_through);
  put_double(bytes, ft.droop_duration.value());
  put_double(bytes, ft.soc_bias);
  put_double(bytes, ft.soc_noise_stddev);
  put_double(bytes, ft.temp_bias_c);
  put_double(bytes, ft.temp_noise_stddev_c);
  put_double(bytes, ft.sensor_dropout_prob);

  // The per-device engine identity knobs that survive the fleet's forced
  // telemetry reset (sim/fleet.cpp run_device): step size, horizon, death
  // model, cooling, the practice baseline.
  put_double(bytes, config.base.dt.value());
  put_double(bytes, config.base.max_duration.value());
  put_u8(bytes, config.base.enable_tec ? 1 : 0);
  put_double(bytes, config.base.death_grace.value());
  put_u8(bytes, static_cast<std::uint8_t>(config.base.practice_chemistry));
  put_double(bytes, config.base.practice_capacity_mah);
  return fnv1a(bytes);
}

// ---------------------------------------------------------------------------
// Writer / reader

CheckpointWriter::CheckpointWriter(std::string path, CheckpointHeader header)
    : path_(std::move(path)), header_(std::move(header)) {}

void CheckpointWriter::write(const std::vector<ShardCheckpoint>& shards) {
  std::string bytes;
  put_frame(bytes, kFrameHeader, encode_header(header_));
  // Ascending shard order: the file layout is deterministic for a given
  // set of completed shards, whatever order they finished in.
  std::vector<const ShardCheckpoint*> ordered;
  ordered.reserve(shards.size());
  for (const auto& shard : shards) ordered.push_back(&shard);
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardCheckpoint* a, const ShardCheckpoint* b) {
              return a->shard < b->shard;
            });
  for (const ShardCheckpoint* shard : ordered) {
    put_frame(bytes, kFrameShard, encode_shard(*shard));
  }
  util::AtomicFile out{path_};
  out.append(bytes);
  out.commit();
  ++writes_;
  bytes_ = bytes.size();
}

std::optional<CheckpointLoad> CheckpointReader::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  std::size_t pos = 0;
  const auto head_frame = next_frame(bytes, pos);
  if (!head_frame || head_frame->type != kFrameHeader) return std::nullopt;
  auto header = decode_header(head_frame->payload);
  if (!header) return std::nullopt;
  pos += head_frame->size;

  CheckpointLoad load;
  load.header = std::move(*header);
  load.frames_kept = 1;
  while (pos < bytes.size()) {
    const auto frame = next_frame(bytes, pos);
    std::optional<ShardCheckpoint> shard;
    if (frame && frame->type == kFrameShard) {
      shard = decode_shard(frame->payload, load.header);
    }
    if (!shard) {
      // Torn or corrupt tail: roll back to the last valid frame. The
      // first undecodable frame is counted; everything behind it is
      // unparseable by construction and lands in bytes_discarded.
      load.frames_discarded = 1;
      load.bytes_discarded = bytes.size() - pos;
      break;
    }
    // Whole-file rewrites make duplicate shard frames impossible; if a
    // decoded-but-duplicate frame shows up anyway, last-wins keeps the
    // load well-defined.
    bool replaced = false;
    for (auto& existing : load.shards) {
      if (existing.shard == shard->shard) {
        existing = std::move(*shard);
        replaced = true;
        break;
      }
    }
    if (!replaced) load.shards.push_back(std::move(*shard));
    ++load.frames_kept;
    pos += frame->size;
  }
  std::sort(load.shards.begin(), load.shards.end(),
            [](const ShardCheckpoint& a, const ShardCheckpoint& b) {
              return a.shard < b.shard;
            });
  return load;
}

}  // namespace capman::sim
