#include "sim/experiment.h"

#include <cctype>
#include <stdexcept>
#include <utility>

#include "policy/baselines.h"
#include "policy/capman_policy.h"
#include "policy/oracle.h"

namespace capman::sim {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<policy::BatteryPolicy> build_policy_impl(
    PolicyKind kind, std::uint64_t seed, const core::CapmanConfig& capman,
    const core::DegradationConfig& resilience) {
  switch (kind) {
    case PolicyKind::kOracle:
      return std::make_unique<policy::OraclePolicy>();
    case PolicyKind::kCapman:
      return std::make_unique<policy::CapmanPolicy>(capman, seed, resilience);
    case PolicyKind::kDual:
      return std::make_unique<policy::DualPolicy>();
    case PolicyKind::kHeuristic:
      return std::make_unique<policy::HeuristicPolicy>();
    case PolicyKind::kPractice:
      return std::make_unique<policy::PracticePolicy>();
  }
  return nullptr;
}

}  // namespace

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kOracle, PolicyKind::kCapman, PolicyKind::kDual,
      PolicyKind::kHeuristic, PolicyKind::kPractice};
  return kAll;
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kOracle: return "Oracle";
    case PolicyKind::kCapman: return "CAPMAN";
    case PolicyKind::kDual: return "Dual";
    case PolicyKind::kHeuristic: return "Heuristic";
    case PolicyKind::kPractice: return "Practice";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ComparisonResult

const SimResult& ComparisonResult::at(PolicyKind kind) const {
  if (const SimResult* r = find(kind)) return *r;
  throw std::out_of_range(std::string{"no result for policy "} +
                          to_string(kind));
}

const SimResult* ComparisonResult::find(PolicyKind kind) const {
  for (const auto& entry : entries_) {
    if (entry.kind == kind) return &entry.result;
  }
  return nullptr;
}

const SimResult* ComparisonResult::find(std::string_view policy_name) const {
  for (const auto& entry : entries_) {
    if (iequals(entry.result.policy, policy_name)) return &entry.result;
  }
  return nullptr;
}

std::vector<SimResult> ComparisonResult::to_vector() const {
  std::vector<SimResult> results;
  results.reserve(entries_.size());
  for (const auto& entry : entries_) results.push_back(entry.result);
  return results;
}

void ComparisonResult::add(PolicyKind kind, SimResult result) {
  entries_.push_back({kind, std::move(result)});
}

// ---------------------------------------------------------------------------
// ExperimentRunner

namespace {

SimConfig merge_options(RunnerOptions& options) {
  if (options.faults) options.config.faults = *options.faults;
  return options.config;
}

}  // namespace

ExperimentRunner::ExperimentRunner(device::PhoneModel phone,
                                   RunnerOptions options)
    : phone_(std::move(phone)),
      seed_(options.seed),
      capman_(options.capman),
      engine_(merge_options(options)) {}

std::unique_ptr<policy::BatteryPolicy> ExperimentRunner::build_policy(
    PolicyKind kind) const {
  core::DegradationConfig resilience;
  // Arm CAPMAN's actuator watchdog only when the fault plan can fire: in
  // fault-free runs the pack legitimately refuses requests for cells that
  // cannot supply, and a watchdog would misread that as actuator failure
  // (and perturb the bit-identical baseline).
  resilience.enabled = config().faults.any_active();
  return build_policy_impl(kind, seed_, capman_, resilience);
}

SimResult ExperimentRunner::run(const workload::Trace& trace,
                                PolicyKind kind) const {
  auto policy = build_policy(kind);
  return engine_.run(trace, *policy, phone_);
}

SimResult ExperimentRunner::run(const workload::Trace& trace,
                                policy::BatteryPolicy& policy) const {
  return engine_.run(trace, policy, phone_);
}

ComparisonResult ExperimentRunner::compare(
    const workload::Trace& trace) const {
  ComparisonResult comparison;
  for (PolicyKind kind : all_policy_kinds()) {
    comparison.add(kind, run(trace, kind));
  }
  return comparison;
}

std::vector<SimResult> ExperimentRunner::run_cycles(
    const workload::Trace& trace, PolicyKind kind, std::size_t cycles) const {
  std::vector<SimResult> results;
  results.reserve(cycles);
  auto policy = build_policy(kind);
  for (std::size_t c = 0; c < cycles; ++c) {
    results.push_back(engine_.run(trace, *policy, phone_));
  }
  return results;
}

double improvement_pct(double a, double b) {
  return b > 0.0 ? 100.0 * (a - b) / b : 0.0;
}

const SimResult* find_result(const std::vector<SimResult>& results,
                             std::string_view policy_name) {
  for (const auto& r : results) {
    if (iequals(r.policy, policy_name)) return &r;
  }
  return nullptr;
}

}  // namespace capman::sim
