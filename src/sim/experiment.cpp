#include "sim/experiment.h"

#include "policy/baselines.h"
#include "policy/capman_policy.h"
#include "policy/oracle.h"

namespace capman::sim {

const std::vector<PolicyKind>& all_policy_kinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kOracle, PolicyKind::kCapman, PolicyKind::kDual,
      PolicyKind::kHeuristic, PolicyKind::kPractice};
  return kAll;
}

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kOracle: return "Oracle";
    case PolicyKind::kCapman: return "CAPMAN";
    case PolicyKind::kDual: return "Dual";
    case PolicyKind::kHeuristic: return "Heuristic";
    case PolicyKind::kPractice: return "Practice";
  }
  return "?";
}

std::unique_ptr<policy::BatteryPolicy> make_policy(PolicyKind kind,
                                                   std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kOracle:
      return std::make_unique<policy::OraclePolicy>();
    case PolicyKind::kCapman:
      return std::make_unique<policy::CapmanPolicy>(core::CapmanConfig{},
                                                    seed);
    case PolicyKind::kDual:
      return std::make_unique<policy::DualPolicy>();
    case PolicyKind::kHeuristic:
      return std::make_unique<policy::HeuristicPolicy>();
    case PolicyKind::kPractice:
      return std::make_unique<policy::PracticePolicy>();
  }
  return nullptr;
}

std::vector<SimResult> run_policy_comparison(const workload::Trace& trace,
                                             const device::PhoneModel& phone,
                                             const SimConfig& config,
                                             std::uint64_t seed) {
  std::vector<SimResult> results;
  SimEngine engine{config};
  for (PolicyKind kind : all_policy_kinds()) {
    auto policy = make_policy(kind, seed);
    results.push_back(engine.run(trace, *policy, phone));
  }
  return results;
}

std::vector<SimResult> run_multi_cycle(const workload::Trace& trace,
                                       const device::PhoneModel& phone,
                                       const SimConfig& config,
                                       PolicyKind kind, std::size_t cycles,
                                       std::uint64_t seed) {
  std::vector<SimResult> results;
  SimEngine engine{config};
  auto policy = make_policy(kind, seed);
  for (std::size_t c = 0; c < cycles; ++c) {
    results.push_back(engine.run(trace, *policy, phone));
  }
  return results;
}

double improvement_pct(double a, double b) {
  return b > 0.0 ? 100.0 * (a - b) / b : 0.0;
}

const SimResult* find_result(const std::vector<SimResult>& results,
                             const std::string& policy_name) {
  for (const auto& r : results) {
    if (r.policy == policy_name) return &r;
  }
  return nullptr;
}

}  // namespace capman::sim
