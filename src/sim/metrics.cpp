#include "sim/metrics.h"

namespace capman::sim {

void FaultStats::publish(obs::MetricsRegistry& registry) const {
  registry.counter("faults/stuck_episodes").add(stuck_episodes);
  registry.gauge("faults/stuck_time_s").add(stuck_time_s);
  registry.counter("faults/dropped_requests").add(dropped_requests);
  registry.counter("faults/transient_failures").add(transient_failures);
  registry.counter("faults/transient_retries").add(transient_retries);
  registry.counter("faults/jittered_switches").add(jittered_switches);
  registry.counter("faults/latency_spikes").add(latency_spikes);
  registry.counter("faults/droop_episodes").add(droop_episodes);
  registry.counter("faults/sensor_dropouts").add(sensor_dropouts);
  registry.counter("faults/corrupted_reads").add(corrupted_reads);
  registry.counter("faults/detected_switch_failures")
      .add(detected_switch_failures);
  registry.counter("faults/fallback_episodes").add(fallback_episodes);
  registry.counter("faults/fallback_retries").add(fallback_retries);
}

FaultStats FaultStats::from_snapshot(const obs::MetricsSnapshot& snap) {
  FaultStats stats;
  stats.stuck_episodes = snap.counter_or("faults/stuck_episodes");
  stats.stuck_time_s = snap.gauge_or("faults/stuck_time_s");
  stats.dropped_requests = snap.counter_or("faults/dropped_requests");
  stats.transient_failures = snap.counter_or("faults/transient_failures");
  stats.transient_retries = snap.counter_or("faults/transient_retries");
  stats.jittered_switches = snap.counter_or("faults/jittered_switches");
  stats.latency_spikes = snap.counter_or("faults/latency_spikes");
  stats.droop_episodes = snap.counter_or("faults/droop_episodes");
  stats.sensor_dropouts = snap.counter_or("faults/sensor_dropouts");
  stats.corrupted_reads = snap.counter_or("faults/corrupted_reads");
  stats.detected_switch_failures =
      snap.counter_or("faults/detected_switch_failures");
  stats.fallback_episodes = snap.counter_or("faults/fallback_episodes");
  stats.fallback_retries = snap.counter_or("faults/fallback_retries");
  return stats;
}

}  // namespace capman::sim
