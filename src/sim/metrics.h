// Simulation outputs: everything the paper's evaluation section reads off
// the testbed (service time, energy, temperatures, switch counts, battery
// activation ratios, time series for the figures).
#pragma once

#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace capman::sim {

/// Fault-episode telemetry for one run, populated only when a FaultPlan is
/// active (all-zero otherwise). Actuator/sensor fields come from the
/// injection layer (sim/faults.h); the detected_*/fallback_* fields come
/// from the scheduler's DegradationGuard (core/degradation.h).
struct FaultStats {
  std::size_t stuck_episodes = 0;      // comparator stuck windows entered
  double stuck_time_s = 0.0;           // total stuck dwell
  std::size_t dropped_requests = 0;    // switch requests eaten while stuck
  std::size_t transient_failures = 0;  // requests lost to glitches
  std::size_t transient_retries = 0;   // board-level bounded retries
  std::size_t jittered_switches = 0;   // flips with perturbed latency
  std::size_t latency_spikes = 0;
  std::size_t droop_episodes = 0;      // supercap ride-through droops
  std::size_t sensor_dropouts = 0;     // reads served last-known-good
  std::size_t corrupted_reads = 0;     // reads with bias/noise applied

  // Scheduler-side graceful degradation (CAPMAN's DegradationGuard).
  std::size_t detected_switch_failures = 0;
  std::size_t fallback_episodes = 0;
  std::size_t fallback_retries = 0;

  /// True when any fault fired or any degradation response engaged.
  [[nodiscard]] bool any() const {
    return stuck_episodes || dropped_requests || transient_failures ||
           transient_retries || jittered_switches || latency_spikes ||
           droop_episodes || sensor_dropouts || corrupted_reads ||
           detected_switch_failures || fallback_episodes || fallback_retries;
  }

  /// Publish the counters into `registry` under faults/*. Cumulative over
  /// a run; publish once, when the run is over (the engine does).
  void publish(obs::MetricsRegistry& registry) const;
  /// View over a registry snapshot (inverse of publish). Lets downstream
  /// consumers (bench_robustness) read fault telemetry off
  /// SimResult::metrics instead of a parallel struct.
  static FaultStats from_snapshot(const obs::MetricsSnapshot& snap);
};

struct SimResult {
  std::string workload;
  std::string policy;
  std::string phone;

  double service_time_s = 0.0;       // discharge-cycle length
  bool truncated = false;            // hit max_duration before dying
  bool died_of_brownout = false;     // sustained unmet demand (vs exhausted)

  double energy_delivered_j = 0.0;
  double energy_lost_j = 0.0;
  double tec_energy_j = 0.0;
  double tec_on_fraction = 0.0;

  double avg_power_w = 0.0;          // average total draw while alive
  double avg_cpu_temp_c = 0.0;
  double max_cpu_temp_c = 0.0;
  double avg_surface_temp_c = 0.0;
  double max_surface_temp_c = 0.0;

  // Power-budget arbiter telemetry (all zero when SimConfig::budget is
  // disabled). "Shed" is demand power the caps refused to serve;
  // throttled steps are steps where any shedding happened at all.
  double avg_budget_mw = 0.0;           // time-weighted effective budget
  double budget_shed_j = 0.0;           // energy trimmed off the demand
  std::size_t budget_throttled_steps = 0;
  std::size_t budget_rebudgets = 0;     // arbiter redistribution count
  std::size_t budget_tec_vetoes = 0;    // TEC turn-ons refused by the grant

  std::size_t switch_count = 0;
  double big_active_s = 0.0;
  double little_active_s = 0.0;
  double end_big_soc = 0.0;     // state of charge when the cycle ended
  double end_little_soc = 0.0;  // (stranded charge is the 'rate-capacity' cost)

  FaultStats faults;  // all-zero unless the run had an active FaultPlan

  /// Health-watchdog telemetry (obs/health.h): per-rule alert counts plus
  /// the full alert log. All-zero/empty unless TelemetryConfig::health was
  /// enabled for the run.
  obs::HealthStats health;
  std::vector<obs::HealthAlert> health_alerts;

  /// Deterministic end-of-run registry snapshot (src/obs): decision-ladder
  /// counters, Algorithm 1 pair counters, switch/fault/guard counters,
  /// engine step counts. Always populated (the registry is cheap); wall-
  /// clock timings appear only when TelemetryConfig::timing_metrics asked
  /// for them.
  obs::MetricsSnapshot metrics;

  // Sampled series for figure reproduction.
  util::TimeSeries soc_series;          // combined SoC vs time (Fig. 12)
  util::TimeSeries power_series;        // total active power vs time (13/15)
  util::TimeSeries cpu_temp_series;     // hot-spot temperature (Fig. 13)
  util::TimeSeries surface_temp_series;
  util::TimeSeries tec_power_series;

  /// Overall energy efficiency delivered / (delivered + lost).
  [[nodiscard]] double efficiency() const {
    const double total = energy_delivered_j + energy_lost_j;
    return total > 0.0 ? energy_delivered_j / total : 0.0;
  }
  /// Fig. 14's x-axis: big activation time / LITTLE activation time.
  [[nodiscard]] double big_little_ratio() const {
    return little_active_s > 0.0 ? big_active_s / little_active_s : 0.0;
  }
};

}  // namespace capman::sim
