// Simulation outputs: everything the paper's evaluation section reads off
// the testbed (service time, energy, temperatures, switch counts, battery
// activation ratios, time series for the figures).
#pragma once

#include <string>

#include "util/stats.h"

namespace capman::sim {

struct SimResult {
  std::string workload;
  std::string policy;
  std::string phone;

  double service_time_s = 0.0;       // discharge-cycle length
  bool truncated = false;            // hit max_duration before dying
  bool died_of_brownout = false;     // sustained unmet demand (vs exhausted)

  double energy_delivered_j = 0.0;
  double energy_lost_j = 0.0;
  double tec_energy_j = 0.0;
  double tec_on_fraction = 0.0;

  double avg_power_w = 0.0;          // average total draw while alive
  double avg_cpu_temp_c = 0.0;
  double max_cpu_temp_c = 0.0;
  double avg_surface_temp_c = 0.0;
  double max_surface_temp_c = 0.0;

  std::size_t switch_count = 0;
  double big_active_s = 0.0;
  double little_active_s = 0.0;
  double end_big_soc = 0.0;     // state of charge when the cycle ended
  double end_little_soc = 0.0;  // (stranded charge is the 'rate-capacity' cost)

  // Sampled series for figure reproduction.
  util::TimeSeries soc_series;          // combined SoC vs time (Fig. 12)
  util::TimeSeries power_series;        // total active power vs time (13/15)
  util::TimeSeries cpu_temp_series;     // hot-spot temperature (Fig. 13)
  util::TimeSeries surface_temp_series;
  util::TimeSeries tec_power_series;

  /// Overall energy efficiency delivered / (delivered + lost).
  [[nodiscard]] double efficiency() const {
    const double total = energy_delivered_j + energy_lost_j;
    return total > 0.0 ? energy_delivered_j / total : 0.0;
  }
  /// Fig. 14's x-axis: big activation time / LITTLE activation time.
  [[nodiscard]] double big_little_ratio() const {
    return little_active_s > 0.0 ? big_active_s / little_active_s : 0.0;
  }
};

}  // namespace capman::sim
