#include "device/power_consumer.h"

#include <algorithm>
#include <cmath>

namespace capman::device {

const char* to_string(ConsumerKind kind) {
  switch (kind) {
    case ConsumerKind::kCpu: return "cpu";
    case ConsumerKind::kScreen: return "screen";
    case ConsumerKind::kWifi: return "wifi";
    case ConsumerKind::kTec: return "tec";
  }
  return "?";
}

util::Milliwatts quantize_cap(util::Milliwatts budget_mw,
                              const ConsumerCapability& cap) {
  // A budget covering the worst case grants it exactly: flooring it to the
  // quantum would derate an uncapped consumer (max_draw need not be a
  // quantum multiple).
  if (budget_mw >= cap.max_draw_mw) return cap.max_draw_mw;
  util::Milliwatts granted = budget_mw;
  if (cap.quantum_mw > util::Milliwatts{}) {
    granted = floor_to_multiple(granted, cap.quantum_mw);
  }
  return std::clamp(granted, cap.min_draw_mw, cap.max_draw_mw);
}

// ---------------------------------------------------------------- CPU ---

CpuPowerConsumer::CpuPowerConsumer(const CpuModel& model) : model_(&model) {
  apply_cap(capability().max_draw_mw);  // start uncapped
}

ConsumerCapability CpuPowerConsumer::capability() const {
  const CpuParams& p = model_->params();
  ConsumerCapability cap;
  const double gamma_low =
      p.gamma_mw_per_util.empty() ? 0.0 : p.gamma_mw_per_util.front();
  const double gamma_high =
      p.gamma_mw_per_util.empty() ? 0.0 : p.gamma_mw_per_util.back();
  cap.min_draw_mw = util::Milliwatts{gamma_low * kMinUtil} + p.c0_base_mw;
  cap.max_draw_mw = util::Milliwatts{gamma_high * 100.0} + p.c0_base_mw;
  cap.quantum_mw = util::Milliwatts{25.0};
  cap.shed_priority = 3;  // the workhorse sheds last (CPU-priority rows)
  return cap;
}

util::Milliwatts CpuPowerConsumer::apply_cap(util::Milliwatts budget_mw) {
  const ConsumerCapability cap = capability();
  granted_mw_ = quantize_cap(budget_mw, cap);
  const CpuParams& p = model_->params();
  // Big-cluster ceiling: largest frequency level whose full-utilization
  // draw fits the grant (gamma is monotone in the frequency index).
  freq_cap_ = 0;
  bool fits = false;
  for (std::size_t f = 0; f < p.gamma_mw_per_util.size(); ++f) {
    if (util::Milliwatts{p.gamma_mw_per_util[f] * 100.0} + p.c0_base_mw <=
        granted_mw_) {
      freq_cap_ = f;
      fits = true;
    }
  }
  if (fits || p.gamma_mw_per_util.empty()) {
    util_cap_ = 100.0;
  } else {
    // Even the lowest frequency cannot run flat out: LITTLE-cluster
    // utilization ceiling carries the remainder of the derate.
    // capman-lint: allow(raw-unit, slope inversion mW -> %util ceiling)
    util_cap_ = std::clamp((granted_mw_ - p.c0_base_mw).raw() /
                               p.gamma_mw_per_util.front(),
                           kMinUtil, 100.0);
  }
  return granted_mw_;
}

void CpuPowerConsumer::shape(DeviceDemand& demand) const {
  if (demand.cpu != CpuState::kC0) return;  // idle states are uncappable
  demand.freq_index = std::min(demand.freq_index, freq_cap_);
  demand.utilization = std::min(demand.utilization, util_cap_);
}

// ------------------------------------------------------------- Screen ---

ScreenPowerConsumer::ScreenPowerConsumer(const ScreenModel& model)
    : model_(&model) {
  apply_cap(capability().max_draw_mw);
}

ConsumerCapability ScreenPowerConsumer::capability() const {
  const ScreenParams& p = model_->params();
  const double alpha = (p.alpha_b_mw_per_level + p.alpha_w_mw_per_level) / 2.0;
  ConsumerCapability cap;
  cap.min_draw_mw = p.c_screen_mw;  // on, brightness 0
  cap.max_draw_mw = util::Milliwatts{alpha * 255.0} + p.c_screen_mw;
  cap.quantum_mw = util::Milliwatts{10.0};
  cap.shed_priority = 1;
  return cap;
}

util::Milliwatts ScreenPowerConsumer::apply_cap(util::Milliwatts budget_mw) {
  const ConsumerCapability cap = capability();
  granted_mw_ = quantize_cap(budget_mw, cap);
  const ScreenParams& p = model_->params();
  const double alpha = (p.alpha_b_mw_per_level + p.alpha_w_mw_per_level) / 2.0;
  // capman-lint: allow(raw-unit, slope inversion mW -> brightness ceiling)
  const double above_floor = (granted_mw_ - p.c_screen_mw).raw();
  brightness_cap_ =
      alpha > 0.0 ? std::clamp(above_floor / alpha, 0.0, 255.0) : 255.0;
  return granted_mw_;
}

void ScreenPowerConsumer::shape(DeviceDemand& demand) const {
  if (demand.screen != ScreenState::kOn) return;
  demand.brightness = std::min(demand.brightness, brightness_cap_);
}

// --------------------------------------------------------------- WiFi ---

WifiPowerConsumer::WifiPowerConsumer(const WifiModel& model) : model_(&model) {
  apply_cap(capability().max_draw_mw);
}

ConsumerCapability WifiPowerConsumer::capability() const {
  const WifiParams& p = model_->params();
  ConsumerCapability cap;
  // A Send state pays the fixed premium even at rate 0, so the honest
  // floor (and every rate inversion below) budgets for the worst case.
  cap.min_draw_mw = p.c_low_mw + p.send_premium_mw;
  cap.max_draw_mw = util::Milliwatts{p.gamma_high_mw_per_rate * kMaxPacketRate} +
                    p.c_high_mw + p.send_premium_mw;
  cap.quantum_mw = util::Milliwatts{10.0};
  cap.shed_priority = 0;  // traffic queues; it sheds first
  return cap;
}

util::Milliwatts WifiPowerConsumer::apply_cap(util::Milliwatts budget_mw) {
  const ConsumerCapability cap = capability();
  granted_mw_ = quantize_cap(budget_mw, cap);
  const WifiParams& p = model_->params();
  // Invert the piecewise-linear rate/power model at the granted level,
  // net of the worst-case send premium. The two segments meet at the
  // threshold rate, so picking the segment by the knee power keeps the
  // inverse continuous.
  const util::Milliwatts available_mw = granted_mw_ - p.send_premium_mw;
  const util::Milliwatts knee_mw =
      util::Milliwatts{p.gamma_low_mw_per_rate * p.threshold} + p.c_low_mw;
  double rate = 0.0;
  if (available_mw >= knee_mw && p.gamma_high_mw_per_rate > 0.0) {
    // capman-lint: allow(raw-unit, slope inversion mW -> packet-rate ceiling)
    rate = (available_mw - p.c_high_mw).raw() / p.gamma_high_mw_per_rate;
  } else if (p.gamma_low_mw_per_rate > 0.0) {
    // capman-lint: allow(raw-unit, slope inversion mW -> packet-rate ceiling)
    rate = (available_mw - p.c_low_mw).raw() / p.gamma_low_mw_per_rate;
  }
  rate_cap_ = std::clamp(rate, 0.0, kMaxPacketRate);
  return granted_mw_;
}

void WifiPowerConsumer::shape(DeviceDemand& demand) const {
  demand.packet_rate = std::min(demand.packet_rate, rate_cap_);
}

}  // namespace capman::device
