// CPU power model (paper Table II row 1, after [36]):
//   P_cpu = gamma_freq * mu + C_cpu      (active, state C0)
// with mu the utilization in [0, 100] and gamma depending on the frequency
// index. Idle states (C1/C2/Sleep) draw their Table III state power.
#pragma once

#include <cstddef>
#include <vector>

#include "device/power_state.h"
#include "util/units.h"

namespace capman::device {

struct CpuParams {
  // One gamma per frequency level, mW per % utilization (a slope, not a
  // power level — stays raw by the L6 naming convention).
  std::vector<double> gamma_mw_per_util;
  util::Milliwatts c0_base_mw{310.0};  // C_cpu: active baseline (== C2 idle)
  util::Milliwatts c1_mw{462.0};       // shallow idle
  util::Milliwatts c2_mw{310.0};       // deep idle, clocks gated
  util::Milliwatts sleep_mw{55.0};     // suspend-to-RAM
  // Frequency range, informational (paper: 1040-2000 MHz across phones).
  double min_freq_mhz = 1040.0;
  double max_freq_mhz = 2000.0;
};

class CpuModel {
 public:
  explicit CpuModel(CpuParams params);

  /// Power at the given state; `utilization` in [0,100] and `freq_index`
  /// into the gamma table only matter in C0.
  [[nodiscard]] util::Watts power(CpuState state, double utilization,
                                  std::size_t freq_index) const;

  [[nodiscard]] std::size_t frequency_levels() const {
    return params_.gamma_mw_per_util.size();
  }
  [[nodiscard]] const CpuParams& params() const { return params_; }

 private:
  CpuParams params_;
};

}  // namespace capman::device
