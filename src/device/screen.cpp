#include "device/screen.h"

#include <algorithm>

namespace capman::device {

util::Watts ScreenModel::power(ScreenState state,
                               double brightness_level) const {
  if (state == ScreenState::kOff) return util::to_watts(params_.off_mw);
  const double b = std::clamp(brightness_level, 0.0, 255.0);
  const util::Milliwatts mw =
      util::Milliwatts{0.5 * (params_.alpha_b_mw_per_level +
                              params_.alpha_w_mw_per_level) *
                       b} +
      params_.c_screen_mw;
  return util::to_watts(mw);
}

}  // namespace capman::device
