// Device power states (paper Fig. 7) and the combined state vector that,
// together with the battery selection, forms the MDP state space
// (4 CPU x 2 screen x 3 WiFi x 2 battery = 48 states, matching the paper's
// "our finite MDP has 50 state nodes").
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace capman::device {

enum class CpuState : std::uint8_t { kSleep = 0, kC2 = 1, kC1 = 2, kC0 = 3 };
enum class ScreenState : std::uint8_t { kOff = 0, kOn = 1 };
enum class WifiState : std::uint8_t { kIdle = 0, kAccess = 1, kSend = 2 };

inline constexpr std::size_t kCpuStateCount = 4;
inline constexpr std::size_t kScreenStateCount = 2;
inline constexpr std::size_t kWifiStateCount = 3;

/// The hardware part of an MDP state (battery selection is appended by
/// core/mdp.h).
struct DeviceStateVector {
  CpuState cpu = CpuState::kSleep;
  ScreenState screen = ScreenState::kOff;
  WifiState wifi = WifiState::kIdle;

  friend bool operator==(const DeviceStateVector&,
                         const DeviceStateVector&) = default;

  /// Dense index in [0, device_state_count()).
  [[nodiscard]] std::size_t index() const {
    return (static_cast<std::size_t>(cpu) * kScreenStateCount +
            static_cast<std::size_t>(screen)) *
               kWifiStateCount +
           static_cast<std::size_t>(wifi);
  }

  static DeviceStateVector from_index(std::size_t index) {
    DeviceStateVector v;
    v.wifi = static_cast<WifiState>(index % kWifiStateCount);
    index /= kWifiStateCount;
    v.screen = static_cast<ScreenState>(index % kScreenStateCount);
    index /= kScreenStateCount;
    v.cpu = static_cast<CpuState>(index);
    return v;
  }
};

inline constexpr std::size_t device_state_count() {
  return kCpuStateCount * kScreenStateCount * kWifiStateCount;
}

const char* to_string(CpuState s);
const char* to_string(ScreenState s);
const char* to_string(WifiState s);
std::string to_string(const DeviceStateVector& v);

}  // namespace capman::device
