// Screen power model (paper Table II row 2, after [7]):
//   P_screen = ((alpha_b + alpha_w) / 2) * B_level + C_screen    (on)
// with brightness level B in [0, 255]; an off screen draws its Table III
// standby power.
#pragma once

#include "device/power_state.h"
#include "util/units.h"

namespace capman::device {

struct ScreenParams {
  // Per-brightness-level slopes (mW per level — stay raw under L6).
  double alpha_b_mw_per_level = 3.5;
  double alpha_w_mw_per_level = 3.0;
  util::Milliwatts c_screen_mw{205.0};
  util::Milliwatts off_mw{22.0};
};

class ScreenModel {
 public:
  explicit ScreenModel(const ScreenParams& params) : params_(params) {}

  [[nodiscard]] util::Watts power(ScreenState state,
                                  double brightness_level) const;

  [[nodiscard]] const ScreenParams& params() const { return params_; }

 private:
  ScreenParams params_;
};

}  // namespace capman::device
