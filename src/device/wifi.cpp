#include "device/wifi.h"

#include <algorithm>

namespace capman::device {

util::Watts WifiModel::power(WifiState state, double packet_rate) const {
  if (state == WifiState::kIdle) return util::milliwatts(params_.c_low_mw);
  const double p = std::max(packet_rate, 0.0);
  const double mw = p <= params_.threshold
                        ? params_.gamma_low_mw * p + params_.c_low_mw
                        : params_.gamma_high_mw * p + params_.c_high_mw;
  const double premium =
      state == WifiState::kSend ? params_.send_premium_mw : 0.0;
  return util::milliwatts(mw + premium);
}

WifiState WifiModel::state_for_rate(double packet_rate, bool sending) const {
  if (packet_rate <= 0.0) return WifiState::kIdle;
  return sending ? WifiState::kSend : WifiState::kAccess;
}

}  // namespace capman::device
