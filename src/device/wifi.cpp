#include "device/wifi.h"

#include <algorithm>

namespace capman::device {

util::Watts WifiModel::power(WifiState state, double packet_rate) const {
  if (state == WifiState::kIdle) return util::to_watts(params_.c_low_mw);
  const double p = std::max(packet_rate, 0.0);
  const util::Milliwatts mw =
      p <= params_.threshold
          ? util::Milliwatts{params_.gamma_low_mw_per_rate * p} +
                params_.c_low_mw
          : util::Milliwatts{params_.gamma_high_mw_per_rate * p} +
                params_.c_high_mw;
  const util::Milliwatts premium =
      state == WifiState::kSend ? params_.send_premium_mw : util::Milliwatts{};
  return util::to_watts(mw + premium);
}

WifiState WifiModel::state_for_rate(double packet_rate, bool sending) const {
  if (packet_rate <= 0.0) return WifiState::kIdle;
  return sending ? WifiState::kSend : WifiState::kAccess;
}

}  // namespace capman::device
