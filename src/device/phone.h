// Phone profiles aggregating the component power models.
//
// The paper prototypes CAPMAN on three phones (Nexus, Honor, Lenovo;
// Android 5.0-7.1; CPU 1040-2000 MHz) whose Table III state powers we use
// for the Nexus and scale modestly for the other two (their absolute
// coefficients are not published; what Fig. 15 shows is that the *shape*
// of active power is similar across phones).
#pragma once

#include <string>

#include "device/cpu.h"
#include "device/power_state.h"
#include "device/screen.h"
#include "device/wifi.h"
#include "util/units.h"

namespace capman::device {

/// What the running software currently asks of each device. Produced by the
/// workload generators, consumed by PhoneModel and by the CAPMAN profiler.
struct DeviceDemand {
  CpuState cpu = CpuState::kSleep;
  double utilization = 0.0;   // [0, 100], meaningful in C0
  std::size_t freq_index = 0;
  ScreenState screen = ScreenState::kOff;
  double brightness = 180.0;  // [0, 255]
  WifiState wifi = WifiState::kIdle;
  double packet_rate = 0.0;

  [[nodiscard]] DeviceStateVector state_vector() const {
    return {cpu, screen, wifi};
  }
};

struct ComponentPower {
  util::Watts cpu;
  util::Watts screen;
  util::Watts wifi;
  [[nodiscard]] util::Watts total() const { return cpu + screen + wifi; }
};

struct PhoneProfile {
  std::string name;
  std::string android_version;
  CpuParams cpu;
  ScreenParams screen;
  WifiParams wifi;
  // Table III's TEC row (0 / 29.17 mW) — the paper's duty-cycle-averaged
  // figure, reported for the table reproduction; the thermal simulation
  // uses the physical TEC model.
  util::Milliwatts tec_on_mw{29.17};
};

/// The Nexus 6 profile: Table III numbers verbatim.
PhoneProfile nexus_profile();
/// Honor: ~10% lower power (smaller SoC, lower max frequency).
PhoneProfile honor_profile();
/// Lenovo: ~12% higher power (older process).
PhoneProfile lenovo_profile();

class PhoneModel {
 public:
  explicit PhoneModel(PhoneProfile profile);

  [[nodiscard]] ComponentPower power(const DeviceDemand& demand) const;

  [[nodiscard]] const PhoneProfile& profile() const { return profile_; }
  [[nodiscard]] const CpuModel& cpu() const { return cpu_; }
  [[nodiscard]] const ScreenModel& screen() const { return screen_; }
  [[nodiscard]] const WifiModel& wifi() const { return wifi_; }

 private:
  PhoneProfile profile_;
  CpuModel cpu_;
  ScreenModel screen_;
  WifiModel wifi_;
};

}  // namespace capman::device
