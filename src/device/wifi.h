// WiFi power model (paper Table II row 3, after [44]): piecewise linear in
// the packet rate p with a threshold t (the paper instantiates t as a
// 100 kB/s traffic threshold on Android 5.0.1):
//   P = gamma_l * p + C_l   if p <= t
//   P = gamma_h * p + C_h   if p >  t
#pragma once

#include "device/power_state.h"
#include "util/units.h"

namespace capman::device {

struct WifiParams {
  // Slopes in mW per packet-rate unit (rates, not power levels — named
  // *_mw_per_rate so L6 leaves them raw).
  double gamma_low_mw_per_rate = 12.24;   // below threshold
  double gamma_high_mw_per_rate = 2.64;   // above threshold
  util::Milliwatts c_low_mw{60.0};        // == Table III idle power at p = 0
  util::Milliwatts c_high_mw{1020.0};
  double threshold = 100.0;               // packet-rate units (≈ kB/s)
  // Fixed premium of sending over receiving at the same rate (Table III:
  // Send 1548 mW vs Access 1284 mW).
  util::Milliwatts send_premium_mw{264.0};
};

class WifiModel {
 public:
  explicit WifiModel(const WifiParams& params) : params_(params) {}

  /// Power given the state and the instantaneous packet rate. The state
  /// gates the rate: Idle forces p = 0; Access/Send use the supplied rate.
  [[nodiscard]] util::Watts power(WifiState state, double packet_rate) const;

  /// The Fig. 7 state a given packet rate corresponds to.
  [[nodiscard]] WifiState state_for_rate(double packet_rate,
                                         bool sending) const;

  [[nodiscard]] const WifiParams& params() const { return params_; }

 private:
  WifiParams params_;
};

}  // namespace capman::device
