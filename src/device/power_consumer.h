// The unified power-consumer surface of the device layer.
//
// Modeled on the sysedp dynamic-capping discipline (SNIPPETS.md Snippet 1):
// an arbiter hands each consumer a milliwatt cap, the consumer reports what
// it can shed (its capability) and returns the level it actually granted —
// quantized to its cap granularity and never below its floor. The concrete
// consumers wrap the Table II power models and additionally know how to
// *shape* a DeviceDemand so the modeled draw fits the granted cap:
// frequency caps for the big cluster plus a utilization ceiling for the
// LITTLE cluster (CpuPowerConsumer), a brightness ceiling
// (ScreenPowerConsumer), and packet-rate throttling (WifiPowerConsumer).
// The TEC driver implements the same interface from the thermal side
// (thermal/tec_consumer.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "device/cpu.h"
#include "device/phone.h"
#include "device/screen.h"
#include "device/wifi.h"

namespace capman::device {

enum class ConsumerKind : std::uint8_t {
  kCpu = 0,
  kScreen = 1,
  kWifi = 2,
  kTec = 3,
};

inline constexpr std::size_t kConsumerKindCount = 4;

const char* to_string(ConsumerKind kind);

/// What a consumer tells the arbiter about itself before any cap is set.
struct ConsumerCapability {
  util::Milliwatts min_draw_mw;        // floor: cannot shed below this
  util::Milliwatts max_draw_mw;        // worst-case unconstrained draw
  util::Milliwatts quantum_mw{1.0};    // cap granularity (floor-quantized)
  // Shed order under deficit: lower sheds first (FastCap-style fair
  // trimming). The arbiter may reorder CPU vs TEC per its priority row.
  int shed_priority = 0;
};

/// Floor-quantize `budget_mw` to the capability quantum, then clamp into
/// [min_draw_mw, max_draw_mw]. This is the one quantization rule every
/// consumer applies, exposed so the arbiter and tests agree with it.
[[nodiscard]] util::Milliwatts quantize_cap(util::Milliwatts budget_mw,
                                            const ConsumerCapability& cap);

/// One cappable device subsystem. apply_cap() is the only mutating entry:
/// it stores the granted level and derives whatever internal ceilings the
/// consumer needs so a later shape() call fits demand under the grant.
class PowerConsumer {
 public:
  virtual ~PowerConsumer() = default;

  [[nodiscard]] virtual ConsumerKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual ConsumerCapability capability() const = 0;

  /// Apply a cap of `budget_mw`; returns the granted level (quantized to
  /// the capability quantum, clamped into [min_draw, max_draw]).
  virtual util::Milliwatts apply_cap(util::Milliwatts budget_mw) = 0;

  /// The level the last apply_cap() granted (max_draw before any cap).
  [[nodiscard]] virtual util::Milliwatts granted_mw() const = 0;

  /// Shape `demand` so this consumer's modeled draw fits the granted cap.
  /// Default: no-op (consumers that do not act through DeviceDemand).
  virtual void shape(DeviceDemand& /*demand*/) const {}
};

/// CPU under a cap: big/LITTLE per-cluster ceilings. The frequency cap
/// constrains the big cluster (largest gamma level whose full-utilization
/// draw fits the grant); when even the lowest frequency cannot fit, the
/// LITTLE-cluster utilization ceiling takes over down to kMinUtil.
class CpuPowerConsumer final : public PowerConsumer {
 public:
  explicit CpuPowerConsumer(const CpuModel& model);

  /// Utilization floor: capping below this would stall the device rather
  /// than slow it (the arbiter's job is derating, not shutdown).
  static constexpr double kMinUtil = 10.0;

  [[nodiscard]] ConsumerKind kind() const override {
    return ConsumerKind::kCpu;
  }
  [[nodiscard]] const char* name() const override { return "cpu"; }
  [[nodiscard]] ConsumerCapability capability() const override;
  util::Milliwatts apply_cap(util::Milliwatts budget_mw) override;
  [[nodiscard]] util::Milliwatts granted_mw() const override {
    return granted_mw_;
  }
  void shape(DeviceDemand& demand) const override;

  /// Ceilings derived by the last apply_cap (exposed for tests).
  [[nodiscard]] std::size_t freq_cap() const { return freq_cap_; }
  [[nodiscard]] double util_cap() const { return util_cap_; }

 private:
  const CpuModel* model_;
  util::Milliwatts granted_mw_;
  std::size_t freq_cap_ = 0;
  double util_cap_ = 100.0;
};

/// Screen under a cap: a brightness ceiling. The cap never turns the
/// screen off (that is a UX decision, not a power one), so the floor is
/// the panel's brightness-zero draw.
class ScreenPowerConsumer final : public PowerConsumer {
 public:
  explicit ScreenPowerConsumer(const ScreenModel& model);

  [[nodiscard]] ConsumerKind kind() const override {
    return ConsumerKind::kScreen;
  }
  [[nodiscard]] const char* name() const override { return "screen"; }
  [[nodiscard]] ConsumerCapability capability() const override;
  util::Milliwatts apply_cap(util::Milliwatts budget_mw) override;
  [[nodiscard]] util::Milliwatts granted_mw() const override {
    return granted_mw_;
  }
  void shape(DeviceDemand& demand) const override;

  [[nodiscard]] double brightness_cap() const { return brightness_cap_; }

 private:
  const ScreenModel* model_;
  util::Milliwatts granted_mw_;
  double brightness_cap_ = 255.0;
};

/// WiFi under a cap: a packet-rate ceiling, inverted through the paper's
/// piecewise-linear rate/power model. Sheds first (traffic is the most
/// elastic load: packets queue, pixels and cycles do not).
class WifiPowerConsumer final : public PowerConsumer {
 public:
  explicit WifiPowerConsumer(const WifiModel& model);

  /// Reference peak packet rate (≈ kB/s) defining max_draw_mw; the trace
  /// generators stay well under it.
  static constexpr double kMaxPacketRate = 400.0;

  [[nodiscard]] ConsumerKind kind() const override {
    return ConsumerKind::kWifi;
  }
  [[nodiscard]] const char* name() const override { return "wifi"; }
  [[nodiscard]] ConsumerCapability capability() const override;
  util::Milliwatts apply_cap(util::Milliwatts budget_mw) override;
  [[nodiscard]] util::Milliwatts granted_mw() const override {
    return granted_mw_;
  }
  void shape(DeviceDemand& demand) const override;

  [[nodiscard]] double rate_cap() const { return rate_cap_; }

 private:
  const WifiModel* model_;
  util::Milliwatts granted_mw_;
  double rate_cap_ = kMaxPacketRate;
};

}  // namespace capman::device
