#include "device/cpu.h"

#include <algorithm>
#include <cassert>

namespace capman::device {

CpuModel::CpuModel(CpuParams params) : params_(std::move(params)) {
  assert(!params_.gamma_mw_per_util.empty());
}

util::Watts CpuModel::power(CpuState state, double utilization,
                            std::size_t freq_index) const {
  switch (state) {
    case CpuState::kSleep:
      return util::to_watts(params_.sleep_mw);
    case CpuState::kC2:
      return util::to_watts(params_.c2_mw);
    case CpuState::kC1:
      return util::to_watts(params_.c1_mw);
    case CpuState::kC0: {
      const double mu = std::clamp(utilization, 0.0, 100.0);
      const std::size_t f =
          std::min(freq_index, params_.gamma_mw_per_util.size() - 1);
      return util::to_watts(util::Milliwatts{params_.gamma_mw_per_util[f] * mu} +
                            params_.c0_base_mw);
    }
  }
  return util::Watts{0.0};
}

}  // namespace capman::device
