#include "device/power_state.h"

namespace capman::device {

const char* to_string(CpuState s) {
  switch (s) {
    case CpuState::kSleep: return "SLEEP";
    case CpuState::kC2: return "C2";
    case CpuState::kC1: return "C1";
    case CpuState::kC0: return "C0";
  }
  return "?";
}

const char* to_string(ScreenState s) {
  return s == ScreenState::kOff ? "OFF" : "ON";
}

const char* to_string(WifiState s) {
  switch (s) {
    case WifiState::kIdle: return "IDLE";
    case WifiState::kAccess: return "ACCESS";
    case WifiState::kSend: return "SEND";
  }
  return "?";
}

std::string to_string(const DeviceStateVector& v) {
  std::string out = "{";
  out += to_string(v.cpu);
  out += ",";
  out += to_string(v.screen);
  out += ",";
  out += to_string(v.wifi);
  out += "}";
  return out;
}

}  // namespace capman::device
