#include "device/phone.h"

namespace capman::device {

namespace {

CpuParams scaled_cpu(double scale) {
  CpuParams p;
  // Three frequency levels; gamma grows superlinearly with frequency
  // (dynamic power ~ f * V^2).
  p.gamma_mw_per_util = {4.2 * scale, 6.04 * scale, 9.0 * scale};
  p.c0_base_mw = util::Milliwatts{310.0 * scale};
  p.c1_mw = util::Milliwatts{462.0 * scale};
  p.c2_mw = util::Milliwatts{310.0 * scale};
  p.sleep_mw = util::Milliwatts{55.0 * scale};
  return p;
}

ScreenParams scaled_screen(double scale) {
  ScreenParams s;
  s.alpha_b_mw_per_level *= scale;
  s.alpha_w_mw_per_level *= scale;
  s.c_screen_mw *= scale;
  s.off_mw *= scale;
  return s;
}

WifiParams scaled_wifi(double scale) {
  WifiParams w;
  w.gamma_low_mw_per_rate *= scale;
  w.c_low_mw *= scale;
  w.gamma_high_mw_per_rate *= scale;
  w.c_high_mw *= scale;
  w.send_premium_mw *= scale;
  return w;
}

PhoneProfile make_profile(std::string name, std::string android,
                          double scale, double min_freq, double max_freq) {
  PhoneProfile profile;
  profile.name = std::move(name);
  profile.android_version = std::move(android);
  profile.cpu = scaled_cpu(scale);
  profile.cpu.min_freq_mhz = min_freq;
  profile.cpu.max_freq_mhz = max_freq;
  profile.screen = scaled_screen(scale);
  profile.wifi = scaled_wifi(scale);
  return profile;
}

}  // namespace

PhoneProfile nexus_profile() {
  return make_profile("Nexus", "5.0.1", 1.0, 1040.0, 2000.0);
}

PhoneProfile honor_profile() {
  return make_profile("Honor", "6.0", 0.90, 1040.0, 1800.0);
}

PhoneProfile lenovo_profile() {
  return make_profile("Lenovo", "7.1", 1.12, 1200.0, 2000.0);
}

PhoneModel::PhoneModel(PhoneProfile profile)
    : profile_(std::move(profile)),
      cpu_(profile_.cpu),
      screen_(profile_.screen),
      wifi_(profile_.wifi) {}

ComponentPower PhoneModel::power(const DeviceDemand& demand) const {
  ComponentPower out;
  out.cpu = cpu_.power(demand.cpu, demand.utilization, demand.freq_index);
  out.screen = screen_.power(demand.screen, demand.brightness);
  out.wifi = wifi_.power(demand.wifi, demand.packet_rate);
  return out;
}

}  // namespace capman::device
