# Empty compiler generated dependencies file for bench_tab1_fig4_catalog.
# This may be replaced when dependencies are built.
