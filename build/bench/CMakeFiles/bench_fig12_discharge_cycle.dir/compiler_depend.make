# Empty compiler generated dependencies file for bench_fig12_discharge_cycle.
# This may be replaced when dependencies are built.
