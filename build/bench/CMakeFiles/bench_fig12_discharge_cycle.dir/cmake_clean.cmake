file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_discharge_cycle.dir/bench_fig12_discharge_cycle.cpp.o"
  "CMakeFiles/bench_fig12_discharge_cycle.dir/bench_fig12_discharge_cycle.cpp.o.d"
  "bench_fig12_discharge_cycle"
  "bench_fig12_discharge_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_discharge_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
