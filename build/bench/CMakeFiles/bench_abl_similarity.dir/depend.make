# Empty dependencies file for bench_abl_similarity.
# This may be replaced when dependencies are built.
