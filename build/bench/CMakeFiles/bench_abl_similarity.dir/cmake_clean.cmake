file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_similarity.dir/bench_abl_similarity.cpp.o"
  "CMakeFiles/bench_abl_similarity.dir/bench_abl_similarity.cpp.o.d"
  "bench_abl_similarity"
  "bench_abl_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
