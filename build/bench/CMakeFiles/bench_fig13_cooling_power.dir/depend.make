# Empty dependencies file for bench_fig13_cooling_power.
# This may be replaced when dependencies are built.
