# Empty dependencies file for bench_abl_switch_cost.
# This may be replaced when dependencies are built.
