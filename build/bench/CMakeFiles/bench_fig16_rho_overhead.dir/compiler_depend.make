# Empty compiler generated dependencies file for bench_fig16_rho_overhead.
# This may be replaced when dependencies are built.
