
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_phones.cpp" "bench/CMakeFiles/bench_fig15_phones.dir/bench_fig15_phones.cpp.o" "gcc" "bench/CMakeFiles/bench_fig15_phones.dir/bench_fig15_phones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/capman_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/capman_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/capman_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/capman_core.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/capman_math.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/capman_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/capman_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/capman_device.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
