file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_phones.dir/bench_fig15_phones.cpp.o"
  "CMakeFiles/bench_fig15_phones.dir/bench_fig15_phones.cpp.o.d"
  "bench_fig15_phones"
  "bench_fig15_phones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_phones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
