# Empty dependencies file for bench_fig15_phones.
# This may be replaced when dependencies are built.
