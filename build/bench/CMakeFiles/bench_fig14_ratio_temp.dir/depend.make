# Empty dependencies file for bench_fig14_ratio_temp.
# This may be replaced when dependencies are built.
