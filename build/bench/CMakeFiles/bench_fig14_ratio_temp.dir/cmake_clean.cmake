file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ratio_temp.dir/bench_fig14_ratio_temp.cpp.o"
  "CMakeFiles/bench_fig14_ratio_temp.dir/bench_fig14_ratio_temp.cpp.o.d"
  "bench_fig14_ratio_temp"
  "bench_fig14_ratio_temp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ratio_temp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
