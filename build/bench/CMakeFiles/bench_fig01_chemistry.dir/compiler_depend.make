# Empty compiler generated dependencies file for bench_fig01_chemistry.
# This may be replaced when dependencies are built.
