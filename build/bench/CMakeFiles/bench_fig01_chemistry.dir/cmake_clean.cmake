file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_chemistry.dir/bench_fig01_chemistry.cpp.o"
  "CMakeFiles/bench_fig01_chemistry.dir/bench_fig01_chemistry.cpp.o.d"
  "bench_fig01_chemistry"
  "bench_fig01_chemistry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_chemistry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
