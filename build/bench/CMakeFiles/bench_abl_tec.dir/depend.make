# Empty dependencies file for bench_abl_tec.
# This may be replaced when dependencies are built.
