file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_tec.dir/bench_abl_tec.cpp.o"
  "CMakeFiles/bench_abl_tec.dir/bench_abl_tec.cpp.o.d"
  "bench_abl_tec"
  "bench_abl_tec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_tec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
