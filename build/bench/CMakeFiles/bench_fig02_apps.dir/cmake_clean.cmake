file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_apps.dir/bench_fig02_apps.cpp.o"
  "CMakeFiles/bench_fig02_apps.dir/bench_fig02_apps.cpp.o.d"
  "bench_fig02_apps"
  "bench_fig02_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
