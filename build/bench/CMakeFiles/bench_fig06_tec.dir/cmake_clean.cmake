file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_tec.dir/bench_fig06_tec.cpp.o"
  "CMakeFiles/bench_fig06_tec.dir/bench_fig06_tec.cpp.o.d"
  "bench_fig06_tec"
  "bench_fig06_tec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_tec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
