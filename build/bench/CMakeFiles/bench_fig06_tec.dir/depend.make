# Empty dependencies file for bench_fig06_tec.
# This may be replaced when dependencies are built.
