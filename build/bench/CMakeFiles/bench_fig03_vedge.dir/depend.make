# Empty dependencies file for bench_fig03_vedge.
# This may be replaced when dependencies are built.
