file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_vedge.dir/bench_fig03_vedge.cpp.o"
  "CMakeFiles/bench_fig03_vedge.dir/bench_fig03_vedge.cpp.o.d"
  "bench_fig03_vedge"
  "bench_fig03_vedge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_vedge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
