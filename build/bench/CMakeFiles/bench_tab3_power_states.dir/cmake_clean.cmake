file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_power_states.dir/bench_tab3_power_states.cpp.o"
  "CMakeFiles/bench_tab3_power_states.dir/bench_tab3_power_states.cpp.o.d"
  "bench_tab3_power_states"
  "bench_tab3_power_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_power_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
