# Empty dependencies file for bench_tab3_power_states.
# This may be replaced when dependencies are built.
