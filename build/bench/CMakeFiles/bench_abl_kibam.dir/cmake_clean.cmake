file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_kibam.dir/bench_abl_kibam.cpp.o"
  "CMakeFiles/bench_abl_kibam.dir/bench_abl_kibam.cpp.o.d"
  "bench_abl_kibam"
  "bench_abl_kibam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_kibam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
