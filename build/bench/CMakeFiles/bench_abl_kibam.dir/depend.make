# Empty dependencies file for bench_abl_kibam.
# This may be replaced when dependencies are built.
