# Empty dependencies file for capman_policy.
# This may be replaced when dependencies are built.
