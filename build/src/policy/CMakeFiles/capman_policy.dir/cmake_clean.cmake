file(REMOVE_RECURSE
  "CMakeFiles/capman_policy.dir/baselines.cpp.o"
  "CMakeFiles/capman_policy.dir/baselines.cpp.o.d"
  "CMakeFiles/capman_policy.dir/capman_policy.cpp.o"
  "CMakeFiles/capman_policy.dir/capman_policy.cpp.o.d"
  "CMakeFiles/capman_policy.dir/oracle.cpp.o"
  "CMakeFiles/capman_policy.dir/oracle.cpp.o.d"
  "libcapman_policy.a"
  "libcapman_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
