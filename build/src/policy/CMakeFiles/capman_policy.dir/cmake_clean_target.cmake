file(REMOVE_RECURSE
  "libcapman_policy.a"
)
