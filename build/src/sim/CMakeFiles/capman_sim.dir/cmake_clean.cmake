file(REMOVE_RECURSE
  "CMakeFiles/capman_sim.dir/engine.cpp.o"
  "CMakeFiles/capman_sim.dir/engine.cpp.o.d"
  "CMakeFiles/capman_sim.dir/experiment.cpp.o"
  "CMakeFiles/capman_sim.dir/experiment.cpp.o.d"
  "libcapman_sim.a"
  "libcapman_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
