file(REMOVE_RECURSE
  "libcapman_sim.a"
)
