# Empty compiler generated dependencies file for capman_sim.
# This may be replaced when dependencies are built.
