
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/battery/cell.cpp" "src/battery/CMakeFiles/capman_battery.dir/cell.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/cell.cpp.o.d"
  "/root/repo/src/battery/charger.cpp" "src/battery/CMakeFiles/capman_battery.dir/charger.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/charger.cpp.o.d"
  "/root/repo/src/battery/chemistry.cpp" "src/battery/CMakeFiles/capman_battery.dir/chemistry.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/chemistry.cpp.o.d"
  "/root/repo/src/battery/pack.cpp" "src/battery/CMakeFiles/capman_battery.dir/pack.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/pack.cpp.o.d"
  "/root/repo/src/battery/supercap.cpp" "src/battery/CMakeFiles/capman_battery.dir/supercap.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/supercap.cpp.o.d"
  "/root/repo/src/battery/switcher.cpp" "src/battery/CMakeFiles/capman_battery.dir/switcher.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/switcher.cpp.o.d"
  "/root/repo/src/battery/vedge.cpp" "src/battery/CMakeFiles/capman_battery.dir/vedge.cpp.o" "gcc" "src/battery/CMakeFiles/capman_battery.dir/vedge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
