file(REMOVE_RECURSE
  "CMakeFiles/capman_battery.dir/cell.cpp.o"
  "CMakeFiles/capman_battery.dir/cell.cpp.o.d"
  "CMakeFiles/capman_battery.dir/charger.cpp.o"
  "CMakeFiles/capman_battery.dir/charger.cpp.o.d"
  "CMakeFiles/capman_battery.dir/chemistry.cpp.o"
  "CMakeFiles/capman_battery.dir/chemistry.cpp.o.d"
  "CMakeFiles/capman_battery.dir/pack.cpp.o"
  "CMakeFiles/capman_battery.dir/pack.cpp.o.d"
  "CMakeFiles/capman_battery.dir/supercap.cpp.o"
  "CMakeFiles/capman_battery.dir/supercap.cpp.o.d"
  "CMakeFiles/capman_battery.dir/switcher.cpp.o"
  "CMakeFiles/capman_battery.dir/switcher.cpp.o.d"
  "CMakeFiles/capman_battery.dir/vedge.cpp.o"
  "CMakeFiles/capman_battery.dir/vedge.cpp.o.d"
  "libcapman_battery.a"
  "libcapman_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
