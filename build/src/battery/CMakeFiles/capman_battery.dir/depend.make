# Empty dependencies file for capman_battery.
# This may be replaced when dependencies are built.
