file(REMOVE_RECURSE
  "libcapman_battery.a"
)
