# Empty compiler generated dependencies file for capman_math.
# This may be replaced when dependencies are built.
