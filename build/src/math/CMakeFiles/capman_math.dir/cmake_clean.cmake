file(REMOVE_RECURSE
  "CMakeFiles/capman_math.dir/dijkstra.cpp.o"
  "CMakeFiles/capman_math.dir/dijkstra.cpp.o.d"
  "CMakeFiles/capman_math.dir/emd.cpp.o"
  "CMakeFiles/capman_math.dir/emd.cpp.o.d"
  "CMakeFiles/capman_math.dir/hausdorff.cpp.o"
  "CMakeFiles/capman_math.dir/hausdorff.cpp.o.d"
  "CMakeFiles/capman_math.dir/indexed_heap.cpp.o"
  "CMakeFiles/capman_math.dir/indexed_heap.cpp.o.d"
  "CMakeFiles/capman_math.dir/matrix.cpp.o"
  "CMakeFiles/capman_math.dir/matrix.cpp.o.d"
  "CMakeFiles/capman_math.dir/min_cost_flow.cpp.o"
  "CMakeFiles/capman_math.dir/min_cost_flow.cpp.o.d"
  "libcapman_math.a"
  "libcapman_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
