
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/dijkstra.cpp" "src/math/CMakeFiles/capman_math.dir/dijkstra.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/dijkstra.cpp.o.d"
  "/root/repo/src/math/emd.cpp" "src/math/CMakeFiles/capman_math.dir/emd.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/emd.cpp.o.d"
  "/root/repo/src/math/hausdorff.cpp" "src/math/CMakeFiles/capman_math.dir/hausdorff.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/hausdorff.cpp.o.d"
  "/root/repo/src/math/indexed_heap.cpp" "src/math/CMakeFiles/capman_math.dir/indexed_heap.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/indexed_heap.cpp.o.d"
  "/root/repo/src/math/matrix.cpp" "src/math/CMakeFiles/capman_math.dir/matrix.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/matrix.cpp.o.d"
  "/root/repo/src/math/min_cost_flow.cpp" "src/math/CMakeFiles/capman_math.dir/min_cost_flow.cpp.o" "gcc" "src/math/CMakeFiles/capman_math.dir/min_cost_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
