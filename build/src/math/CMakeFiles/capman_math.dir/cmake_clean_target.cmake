file(REMOVE_RECURSE
  "libcapman_math.a"
)
