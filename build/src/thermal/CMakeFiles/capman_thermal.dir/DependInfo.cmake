
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/controller.cpp" "src/thermal/CMakeFiles/capman_thermal.dir/controller.cpp.o" "gcc" "src/thermal/CMakeFiles/capman_thermal.dir/controller.cpp.o.d"
  "/root/repo/src/thermal/network.cpp" "src/thermal/CMakeFiles/capman_thermal.dir/network.cpp.o" "gcc" "src/thermal/CMakeFiles/capman_thermal.dir/network.cpp.o.d"
  "/root/repo/src/thermal/phone_thermal.cpp" "src/thermal/CMakeFiles/capman_thermal.dir/phone_thermal.cpp.o" "gcc" "src/thermal/CMakeFiles/capman_thermal.dir/phone_thermal.cpp.o.d"
  "/root/repo/src/thermal/tec.cpp" "src/thermal/CMakeFiles/capman_thermal.dir/tec.cpp.o" "gcc" "src/thermal/CMakeFiles/capman_thermal.dir/tec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
