file(REMOVE_RECURSE
  "libcapman_thermal.a"
)
