# Empty dependencies file for capman_thermal.
# This may be replaced when dependencies are built.
