file(REMOVE_RECURSE
  "CMakeFiles/capman_thermal.dir/controller.cpp.o"
  "CMakeFiles/capman_thermal.dir/controller.cpp.o.d"
  "CMakeFiles/capman_thermal.dir/network.cpp.o"
  "CMakeFiles/capman_thermal.dir/network.cpp.o.d"
  "CMakeFiles/capman_thermal.dir/phone_thermal.cpp.o"
  "CMakeFiles/capman_thermal.dir/phone_thermal.cpp.o.d"
  "CMakeFiles/capman_thermal.dir/tec.cpp.o"
  "CMakeFiles/capman_thermal.dir/tec.cpp.o.d"
  "libcapman_thermal.a"
  "libcapman_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
