# Empty dependencies file for capman_core.
# This may be replaced when dependencies are built.
