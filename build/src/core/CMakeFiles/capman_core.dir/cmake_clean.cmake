file(REMOVE_RECURSE
  "CMakeFiles/capman_core.dir/controller.cpp.o"
  "CMakeFiles/capman_core.dir/controller.cpp.o.d"
  "CMakeFiles/capman_core.dir/mdp.cpp.o"
  "CMakeFiles/capman_core.dir/mdp.cpp.o.d"
  "CMakeFiles/capman_core.dir/mdp_graph.cpp.o"
  "CMakeFiles/capman_core.dir/mdp_graph.cpp.o.d"
  "CMakeFiles/capman_core.dir/profiler.cpp.o"
  "CMakeFiles/capman_core.dir/profiler.cpp.o.d"
  "CMakeFiles/capman_core.dir/scheduler.cpp.o"
  "CMakeFiles/capman_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/capman_core.dir/similarity.cpp.o"
  "CMakeFiles/capman_core.dir/similarity.cpp.o.d"
  "CMakeFiles/capman_core.dir/state.cpp.o"
  "CMakeFiles/capman_core.dir/state.cpp.o.d"
  "CMakeFiles/capman_core.dir/value_iteration.cpp.o"
  "CMakeFiles/capman_core.dir/value_iteration.cpp.o.d"
  "libcapman_core.a"
  "libcapman_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
