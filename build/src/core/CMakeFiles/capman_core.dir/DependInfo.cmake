
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/capman_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/mdp.cpp" "src/core/CMakeFiles/capman_core.dir/mdp.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/mdp.cpp.o.d"
  "/root/repo/src/core/mdp_graph.cpp" "src/core/CMakeFiles/capman_core.dir/mdp_graph.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/mdp_graph.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/capman_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/capman_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/capman_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/similarity.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/core/CMakeFiles/capman_core.dir/state.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/state.cpp.o.d"
  "/root/repo/src/core/value_iteration.cpp" "src/core/CMakeFiles/capman_core.dir/value_iteration.cpp.o" "gcc" "src/core/CMakeFiles/capman_core.dir/value_iteration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/capman_math.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/capman_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/capman_device.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/capman_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
