file(REMOVE_RECURSE
  "libcapman_core.a"
)
