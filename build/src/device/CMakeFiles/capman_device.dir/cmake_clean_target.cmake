file(REMOVE_RECURSE
  "libcapman_device.a"
)
