
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/cpu.cpp" "src/device/CMakeFiles/capman_device.dir/cpu.cpp.o" "gcc" "src/device/CMakeFiles/capman_device.dir/cpu.cpp.o.d"
  "/root/repo/src/device/phone.cpp" "src/device/CMakeFiles/capman_device.dir/phone.cpp.o" "gcc" "src/device/CMakeFiles/capman_device.dir/phone.cpp.o.d"
  "/root/repo/src/device/power_state.cpp" "src/device/CMakeFiles/capman_device.dir/power_state.cpp.o" "gcc" "src/device/CMakeFiles/capman_device.dir/power_state.cpp.o.d"
  "/root/repo/src/device/screen.cpp" "src/device/CMakeFiles/capman_device.dir/screen.cpp.o" "gcc" "src/device/CMakeFiles/capman_device.dir/screen.cpp.o.d"
  "/root/repo/src/device/wifi.cpp" "src/device/CMakeFiles/capman_device.dir/wifi.cpp.o" "gcc" "src/device/CMakeFiles/capman_device.dir/wifi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/capman_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
