# Empty compiler generated dependencies file for capman_device.
# This may be replaced when dependencies are built.
