file(REMOVE_RECURSE
  "CMakeFiles/capman_device.dir/cpu.cpp.o"
  "CMakeFiles/capman_device.dir/cpu.cpp.o.d"
  "CMakeFiles/capman_device.dir/phone.cpp.o"
  "CMakeFiles/capman_device.dir/phone.cpp.o.d"
  "CMakeFiles/capman_device.dir/power_state.cpp.o"
  "CMakeFiles/capman_device.dir/power_state.cpp.o.d"
  "CMakeFiles/capman_device.dir/screen.cpp.o"
  "CMakeFiles/capman_device.dir/screen.cpp.o.d"
  "CMakeFiles/capman_device.dir/wifi.cpp.o"
  "CMakeFiles/capman_device.dir/wifi.cpp.o.d"
  "libcapman_device.a"
  "libcapman_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
