file(REMOVE_RECURSE
  "CMakeFiles/capman_workload.dir/event.cpp.o"
  "CMakeFiles/capman_workload.dir/event.cpp.o.d"
  "CMakeFiles/capman_workload.dir/generators.cpp.o"
  "CMakeFiles/capman_workload.dir/generators.cpp.o.d"
  "CMakeFiles/capman_workload.dir/trace.cpp.o"
  "CMakeFiles/capman_workload.dir/trace.cpp.o.d"
  "CMakeFiles/capman_workload.dir/trace_io.cpp.o"
  "CMakeFiles/capman_workload.dir/trace_io.cpp.o.d"
  "libcapman_workload.a"
  "libcapman_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
