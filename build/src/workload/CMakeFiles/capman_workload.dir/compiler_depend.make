# Empty compiler generated dependencies file for capman_workload.
# This may be replaced when dependencies are built.
