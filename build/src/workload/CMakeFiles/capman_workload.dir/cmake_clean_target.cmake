file(REMOVE_RECURSE
  "libcapman_workload.a"
)
