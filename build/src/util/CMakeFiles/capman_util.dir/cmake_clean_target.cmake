file(REMOVE_RECURSE
  "libcapman_util.a"
)
