file(REMOVE_RECURSE
  "CMakeFiles/capman_util.dir/csv.cpp.o"
  "CMakeFiles/capman_util.dir/csv.cpp.o.d"
  "CMakeFiles/capman_util.dir/logging.cpp.o"
  "CMakeFiles/capman_util.dir/logging.cpp.o.d"
  "CMakeFiles/capman_util.dir/rng.cpp.o"
  "CMakeFiles/capman_util.dir/rng.cpp.o.d"
  "CMakeFiles/capman_util.dir/stats.cpp.o"
  "CMakeFiles/capman_util.dir/stats.cpp.o.d"
  "CMakeFiles/capman_util.dir/table.cpp.o"
  "CMakeFiles/capman_util.dir/table.cpp.o.d"
  "libcapman_util.a"
  "libcapman_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
