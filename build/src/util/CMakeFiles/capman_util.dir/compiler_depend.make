# Empty compiler generated dependencies file for capman_util.
# This may be replaced when dependencies are built.
