# Empty dependencies file for capman_cli.
# This may be replaced when dependencies are built.
