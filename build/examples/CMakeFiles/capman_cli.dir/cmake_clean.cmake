file(REMOVE_RECURSE
  "CMakeFiles/capman_cli.dir/capman_sim.cpp.o"
  "CMakeFiles/capman_cli.dir/capman_sim.cpp.o.d"
  "capman_sim"
  "capman_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capman_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
