# Empty compiler generated dependencies file for thermal_cooling.
# This may be replaced when dependencies are built.
