file(REMOVE_RECURSE
  "CMakeFiles/thermal_cooling.dir/thermal_cooling.cpp.o"
  "CMakeFiles/thermal_cooling.dir/thermal_cooling.cpp.o.d"
  "thermal_cooling"
  "thermal_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
