file(REMOVE_RECURSE
  "CMakeFiles/math_matrix_heap_test.dir/math/matrix_heap_test.cpp.o"
  "CMakeFiles/math_matrix_heap_test.dir/math/matrix_heap_test.cpp.o.d"
  "math_matrix_heap_test"
  "math_matrix_heap_test.pdb"
  "math_matrix_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_matrix_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
