# Empty compiler generated dependencies file for core_mdp_graph_test.
# This may be replaced when dependencies are built.
