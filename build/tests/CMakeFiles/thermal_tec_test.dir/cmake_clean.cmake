file(REMOVE_RECURSE
  "CMakeFiles/thermal_tec_test.dir/thermal/tec_test.cpp.o"
  "CMakeFiles/thermal_tec_test.dir/thermal/tec_test.cpp.o.d"
  "thermal_tec_test"
  "thermal_tec_test.pdb"
  "thermal_tec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_tec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
