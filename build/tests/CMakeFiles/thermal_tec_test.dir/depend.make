# Empty dependencies file for thermal_tec_test.
# This may be replaced when dependencies are built.
