# Empty compiler generated dependencies file for core_mdp_test.
# This may be replaced when dependencies are built.
