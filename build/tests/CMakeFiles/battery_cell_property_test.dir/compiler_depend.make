# Empty compiler generated dependencies file for battery_cell_property_test.
# This may be replaced when dependencies are built.
