file(REMOVE_RECURSE
  "CMakeFiles/battery_charger_test.dir/battery/charger_test.cpp.o"
  "CMakeFiles/battery_charger_test.dir/battery/charger_test.cpp.o.d"
  "battery_charger_test"
  "battery_charger_test.pdb"
  "battery_charger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_charger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
