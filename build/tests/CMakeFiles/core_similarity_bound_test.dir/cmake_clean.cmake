file(REMOVE_RECURSE
  "CMakeFiles/core_similarity_bound_test.dir/core/similarity_bound_test.cpp.o"
  "CMakeFiles/core_similarity_bound_test.dir/core/similarity_bound_test.cpp.o.d"
  "core_similarity_bound_test"
  "core_similarity_bound_test.pdb"
  "core_similarity_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_similarity_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
