# Empty dependencies file for core_similarity_bound_test.
# This may be replaced when dependencies are built.
