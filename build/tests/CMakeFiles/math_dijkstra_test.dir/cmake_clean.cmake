file(REMOVE_RECURSE
  "CMakeFiles/math_dijkstra_test.dir/math/dijkstra_test.cpp.o"
  "CMakeFiles/math_dijkstra_test.dir/math/dijkstra_test.cpp.o.d"
  "math_dijkstra_test"
  "math_dijkstra_test.pdb"
  "math_dijkstra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
