# Empty compiler generated dependencies file for math_dijkstra_test.
# This may be replaced when dependencies are built.
