file(REMOVE_RECURSE
  "CMakeFiles/battery_pack_test.dir/battery/pack_test.cpp.o"
  "CMakeFiles/battery_pack_test.dir/battery/pack_test.cpp.o.d"
  "battery_pack_test"
  "battery_pack_test.pdb"
  "battery_pack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_pack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
