# Empty compiler generated dependencies file for battery_pack_test.
# This may be replaced when dependencies are built.
