file(REMOVE_RECURSE
  "CMakeFiles/math_hausdorff_test.dir/math/hausdorff_test.cpp.o"
  "CMakeFiles/math_hausdorff_test.dir/math/hausdorff_test.cpp.o.d"
  "math_hausdorff_test"
  "math_hausdorff_test.pdb"
  "math_hausdorff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_hausdorff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
