# Empty dependencies file for math_hausdorff_test.
# This may be replaced when dependencies are built.
