file(REMOVE_RECURSE
  "CMakeFiles/math_flow_emd_test.dir/math/flow_emd_test.cpp.o"
  "CMakeFiles/math_flow_emd_test.dir/math/flow_emd_test.cpp.o.d"
  "math_flow_emd_test"
  "math_flow_emd_test.pdb"
  "math_flow_emd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_flow_emd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
