# Empty dependencies file for math_flow_emd_test.
# This may be replaced when dependencies are built.
