file(REMOVE_RECURSE
  "CMakeFiles/battery_cell_test.dir/battery/cell_test.cpp.o"
  "CMakeFiles/battery_cell_test.dir/battery/cell_test.cpp.o.d"
  "battery_cell_test"
  "battery_cell_test.pdb"
  "battery_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
