file(REMOVE_RECURSE
  "CMakeFiles/battery_switcher_supercap_test.dir/battery/switcher_supercap_test.cpp.o"
  "CMakeFiles/battery_switcher_supercap_test.dir/battery/switcher_supercap_test.cpp.o.d"
  "battery_switcher_supercap_test"
  "battery_switcher_supercap_test.pdb"
  "battery_switcher_supercap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_switcher_supercap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
