# Empty compiler generated dependencies file for battery_switcher_supercap_test.
# This may be replaced when dependencies are built.
