file(REMOVE_RECURSE
  "CMakeFiles/battery_vedge_test.dir/battery/vedge_test.cpp.o"
  "CMakeFiles/battery_vedge_test.dir/battery/vedge_test.cpp.o.d"
  "battery_vedge_test"
  "battery_vedge_test.pdb"
  "battery_vedge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_vedge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
