# Empty dependencies file for battery_vedge_test.
# This may be replaced when dependencies are built.
